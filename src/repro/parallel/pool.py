"""Process worker pool over one shared snapshot.

:class:`WorkerPool` owns N worker processes (see
:mod:`repro.parallel.worker`), each serving the same published
snapshot. The plumbing is deliberately simple and lock-light:

* **dispatch** — every worker has a private task queue; tasks are
  round-robined across live workers (or targeted, for broadcasts).
  Each task gets a :class:`concurrent.futures.Future` the caller
  blocks on, so any number of parent threads can submit concurrently;
* **router** — one parent thread drains the single shared result
  queue and resolves futures by request id;
* **monitor** — one parent thread polls worker liveness. A dead
  worker (crash, kill, OOM) fails every future assigned to it with
  :class:`~repro.exceptions.WorkerCrashedError`, then a replacement
  process is spawned from the same snapshot with a fresh task queue —
  callers see one errored request, never a hung one;
* **watchdog** — a worker reports ``started`` when it picks a
  request off its queue; from that moment the request carries a
  lease deadline (``lease_seconds`` past *start of execution*, so
  queue wait never counts against it — back-to-back long queries on
  one worker each get a full lease). A worker still holding an
  expired lease is declared *hung* — stuck enumeration, deadlock,
  swap storm — and the monitor escalates ``terminate()`` →
  ``kill()``, respawns the slot, and fails the leased futures with
  :class:`~repro.exceptions.WorkerTimeoutError` (HTTP 503 at the
  service), so a caller waits at most one lease past start, never
  forever. A worker incarnation that has never answered anything
  (hung while loading its snapshot) is covered by a dispatch-age
  bound instead: a request queued to it for a whole lease without a
  ``started`` marker counts as expired;
* **circuit breaker** — each respawn is stamped; more than
  ``max_respawns`` inside ``respawn_window`` seconds is a crash
  storm (bad snapshot, poison query, OOM loop). The breaker opens:
  the dead slot is *removed* instead of respawned, the pool shrinks
  to its surviving workers, and :attr:`WorkerPool.degraded` flips —
  ``/healthz`` reports ``degraded`` and ``repro_pool_degraded`` is 1.
  The breaker is sticky; recovery is an operator restart (see
  ``docs/OPERATIONS.md``);
* **shutdown** — a ``None`` sentinel per task queue, bounded joins,
  ``terminate()`` then ``kill()`` for stragglers — shutdown can
  never leave a live orphan process behind.

The pool prefers the ``fork`` start method when the platform offers
it (workers then share the parent's page-cache view of the snapshot
files and start in milliseconds); pass ``mp_method="spawn"`` for a
fully isolated cold start.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing
import sys
import threading
import time
import uuid
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.exceptions import (
    QueryError,
    WorkerCrashedError,
    WorkerError,
    WorkerTimeoutError,
)
from repro.parallel.worker import worker_main

#: Seconds between liveness polls of the monitor thread.
MONITOR_INTERVAL = 0.2

#: Seconds a worker gets to exit after its shutdown sentinel.
JOIN_TIMEOUT = 5.0

#: Seconds a terminated process gets before the SIGKILL escalation.
KILL_GRACE = 1.0

#: Default per-request lease (counted from when the worker *starts*
#: executing the request, not from dispatch) before the watchdog
#: declares the worker hung. Generous: COMM-all on the bench datasets
#: answers in milliseconds; anything holding a core for minutes is
#: wedged.
DEFAULT_LEASE_SECONDS = 120.0

#: Default crash-storm circuit breaker: more than this many respawns
#: inside :data:`DEFAULT_RESPAWN_WINDOW` seconds opens the breaker.
DEFAULT_MAX_RESPAWNS = 5

#: Seconds over which respawns are counted against the breaker.
DEFAULT_RESPAWN_WINDOW = 30.0


class _WorkerHandle:
    """One worker slot: the live process and its private task queue."""

    __slots__ = ("worker_id", "process", "queue", "proved")

    def __init__(self, worker_id: int, process: Any,
                 queue: Any) -> None:
        self.worker_id = worker_id
        self.process = process
        self.queue = queue
        #: True once this incarnation sent anything back on the result
        #: queue — proof it loaded its snapshot and reads its queue.
        #: Until then the watchdog bounds *queue wait* too (a worker
        #: hung during startup never emits ``started`` markers).
        self.proved = False


class WorkerPool:
    """N processes serving the snapshot at ``snapshot_path``."""

    def __init__(self, snapshot_path: Union[str, Path],
                 workers: int = 2,
                 mp_method: Optional[str] = None,
                 lease_seconds: Optional[float] = DEFAULT_LEASE_SECONDS,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 respawn_window: float = DEFAULT_RESPAWN_WINDOW,
                 snapshot_mode: str = "copy",
                 result_cache_bytes: Optional[int] = None,
                 wal_path: Optional[str] = None
                 ) -> None:
        if workers <= 0:
            raise ValueError(
                f"worker count must be positive, got {workers}")
        if lease_seconds is not None and lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be positive, got {lease_seconds}")
        self.snapshot_path = str(snapshot_path)
        #: How each worker materializes the snapshot (``"copy"`` /
        #: ``"mmap"`` / ``"auto"``); mmap-mode workers share one
        #: page-cache copy and (re)spawn without deserializing.
        self.snapshot_mode = snapshot_mode
        #: Per-worker result-cache budget (``None`` = engine default,
        #: ``0`` disables); each worker owns a private cache.
        self.result_cache_bytes = result_cache_bytes
        #: Path of the delta WAL every worker incarnation replays
        #: after loading its snapshot (``None`` = no WAL). Spawn-mode
        #: children re-read the file themselves, so this stays a
        #: picklable string, never a live handle.
        self.wal_path = wal_path
        self.workers = workers
        #: Per-request watchdog lease; ``None`` disables the watchdog.
        self.lease_seconds = lease_seconds
        self.max_respawns = max_respawns
        self.respawn_window = respawn_window
        methods = multiprocessing.get_all_start_methods()
        if mp_method is None:
            mp_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_method)
        self._handles: Dict[int, _WorkerHandle] = {}
        self._pending: Dict[str, Tuple[Future, int]] = {}
        #: request_id -> monotonic lease deadline, set by the router
        #: when the worker reports it *started* the request (kept
        #: apart from ``_pending`` so its 2-tuple shape stays stable
        #: for callers).
        self._leases: Dict[str, float] = {}
        #: request_id -> monotonic dispatch time; bounds queue wait
        #: only on worker incarnations that never proved themselves.
        self._dispatched: Dict[str, float] = {}
        self._respawn_times: Deque[float] = collections.deque()
        self._lock = threading.Lock()
        self._rr = itertools.count()
        self._result_queue: Any = None
        self._router: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.respawns = 0
        #: Requests failed by the watchdog (hung-worker kills).
        self.timeouts = 0
        #: True once the crash-storm breaker opened; sticky until the
        #: pool is rebuilt.
        self.degraded = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = True,
              timeout: float = 60.0) -> "WorkerPool":
        """Spawn the workers and the router/monitor threads.

        With ``wait_ready`` (the default) the call blocks until every
        worker answered a ``ping`` — i.e. finished loading the
        snapshot — so the first real query never pays cold-start.
        """
        if self._result_queue is not None:
            return self
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        self._router = threading.Thread(
            target=self._route_results, daemon=True,
            name="repro-pool-router")
        self._router.start()
        self._monitor = threading.Thread(
            target=self._watch_workers, daemon=True,
            name="repro-pool-monitor")
        self._monitor.start()
        if wait_ready:
            for future in self.broadcast("ping", None).values():
                future.result(timeout=timeout)
        return self

    def _spawn(self, worker_id: int) -> None:
        """Start (or restart) the worker in slot ``worker_id``."""
        faults.hit("pool.spawn")
        queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.snapshot_path, queue,
                  self._result_queue, self.snapshot_mode,
                  self.result_cache_bytes, self.wal_path),
            daemon=True, name=f"repro-worker-{worker_id}")
        process.start()
        self._handles[worker_id] = _WorkerHandle(
            worker_id, process, queue)

    @staticmethod
    def _destroy(handle: _WorkerHandle,
                 grace: float = KILL_GRACE) -> None:
        """Stop a worker process for sure: terminate, then kill.

        SIGTERM first (lets the child run atexit/queue feeders down),
        SIGKILL when it survives the grace period — a worker stuck in
        an uninterruptible loop or masking signals cannot outlive
        this.
        """
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=grace)
        if process.is_alive():
            process.kill()
            process.join(timeout=grace)

    @staticmethod
    def _dispose_queue(queue: Any) -> None:
        """Release a parent-side queue without risking an exit hang.

        ``multiprocessing.Queue`` registers an atexit finalizer that
        joins its feeder thread; a queue whose consumer died (a
        crashed or killed worker) can leave that feeder blocked
        forever, hanging interpreter shutdown. ``cancel_join_thread``
        unregisters the join so exit never waits on it.
        """
        try:
            queue.cancel_join_thread()
            queue.close()
        except (ValueError, OSError):
            pass                          # queue already closed

    def shutdown(self) -> None:
        """Sentinel every worker, join, terminate/kill stragglers."""
        if self._result_queue is None:
            return
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=JOIN_TIMEOUT)
        for handle in self._handles.values():
            try:
                handle.queue.put(None)
            except (ValueError, OSError):
                pass                      # queue already closed
        for handle in self._handles.values():
            handle.process.join(timeout=JOIN_TIMEOUT)
            self._destroy(handle)
            self._dispose_queue(handle.queue)
        try:
            self._result_queue.put(None)
        except (ValueError, OSError):
            pass                          # already closed (re-entry)
        if self._router is not None:
            self._router.join(timeout=JOIN_TIMEOUT)
        self._dispose_queue(self._result_queue)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._leases.clear()
            self._dispatched.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(
                    WorkerError("pool shut down with request pending"))

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def alive(self) -> int:
        """How many worker processes are currently running."""
        return sum(1 for handle in self._handles.values()
                   if handle.process.is_alive())

    def pids(self) -> Dict[int, int]:
        """``worker_id -> pid`` of the current processes."""
        return {wid: handle.process.pid
                for wid, handle in self._handles.items()}

    def submit(self, op: str, payload: Any,
               worker_id: Optional[int] = None) -> Future:
        """Queue one task; returns the future for its result.

        Without ``worker_id`` the task round-robins across live
        workers; a targeted submit goes to that slot regardless (used
        by broadcasts, which must reach every worker).
        """
        if self._result_queue is None:
            raise WorkerError("pool is not started")
        if self._router is not None and not self._router.is_alive() \
                and not self._stop.is_set():
            raise WorkerError(
                "pool result router is not running; results would "
                "never be delivered")
        faults.hit("pool.dispatch")
        if worker_id is None:
            worker_id = self._pick_worker()
        handle = self._handles[worker_id]
        request_id = uuid.uuid4().hex
        future: Future = Future()
        with self._lock:
            self._pending[request_id] = (future, worker_id)
            if self.lease_seconds is not None:
                # The execution lease starts only when the worker
                # reports ``started``; until then the dispatch stamp
                # bounds queue wait on unproven incarnations.
                self._dispatched[request_id] = time.monotonic()
        try:
            handle.queue.put((request_id, op, payload))
        except Exception as error:  # noqa: BLE001 — queue failure
            with self._lock:
                self._pending.pop(request_id, None)
                self._leases.pop(request_id, None)
                self._dispatched.pop(request_id, None)
            future.set_exception(WorkerError(str(error)))
        return future

    def request(self, op: str, payload: Any,
                timeout: Optional[float] = None) -> Any:
        """Submit and block for the result."""
        return self.submit(op, payload).result(timeout=timeout)

    def kick(self, worker_id: int) -> bool:
        """Destroy a worker so the monitor respawns it fresh.

        The self-healing path for a worker that failed a delta
        broadcast while a WAL is attached: its replacement replays
        the full WAL suffix on startup and converges with the pool
        without anyone tracking which delta it missed. Returns
        ``False`` for an unknown (breaker-removed) slot.
        """
        handle = self._handles.get(worker_id)
        if handle is None:
            return False
        self._fail_pending(
            worker_id,
            f"worker {worker_id} (pid {handle.process.pid}) was "
            f"kicked for respawn after a failed delta broadcast")
        self._destroy(handle)
        return True

    def broadcast(self, op: str,
                  payload: Any) -> Dict[int, Future]:
        """One targeted task per worker slot; ``worker_id -> future``.

        Control messages (reload, stats, ping) ride the same queues
        as queries, so a broadcast lands *behind* whatever each worker
        already has in flight — a reload never preempts or drops a
        running query.
        """
        return {worker_id: self.submit(op, payload, worker_id)
                for worker_id in sorted(self._handles)}

    def _pick_worker(self) -> int:
        """Round-robin over live workers (any slot if none look live)."""
        slots = sorted(self._handles)
        if not slots:
            raise WorkerCrashedError(
                "pool has no workers left (crash-storm breaker open)")
        for _ in range(len(slots)):
            worker_id = slots[next(self._rr) % len(slots)]
            if self._handles[worker_id].process.is_alive():
                return worker_id
        return slots[next(self._rr) % len(slots)]

    # ------------------------------------------------------------------
    # router / monitor threads
    # ------------------------------------------------------------------
    def _route_results(self) -> None:
        """Drain the shared result queue, resolving futures.

        The loop survives anything a single message can throw at it:
        a worker SIGKILLed mid-``put`` (watchdog, crash) can leave a
        torn or partial pickle in the shared queue, and a router that
        died on the resulting unpickling error would silently hang
        every pending and future request. Such messages are logged
        and dropped instead.
        """
        while True:
            try:
                item = self._result_queue.get()
                if item is None:
                    return
                request_id, worker_id, status, payload = item
                if status == "started":
                    self._mark_started(request_id, worker_id)
                    continue
                with self._lock:
                    entry = self._pending.pop(request_id, None)
                    self._leases.pop(request_id, None)
                    self._dispatched.pop(request_id, None)
                    if entry is not None and entry[1] == worker_id:
                        handle = self._handles.get(worker_id)
                        if handle is not None:
                            handle.proved = True
                if entry is None:
                    continue          # crashed-and-failed, late reply
                future, _ = entry
                if future.done():
                    continue
                if status == "ok":
                    future.set_result(payload)
                elif status == "query_error":
                    # Bad query, healthy worker: surface the same
                    # exception type in-process execution raises.
                    future.set_exception(QueryError(payload))
                else:
                    future.set_exception(WorkerError(payload))
            except Exception as error:  # noqa: BLE001 — a corrupt
                # message must not kill the router.
                if self._stop.is_set():
                    return
                print(f"repro-pool-router: dropped undecodable "
                      f"result ({type(error).__name__}: {error})",
                      file=sys.stderr)
                time.sleep(0.05)      # never spin on a broken queue

    def _mark_started(self, request_id: str, worker_id: int) -> None:
        """A worker began executing ``request_id``: start its lease.

        Stale markers — from a killed incarnation, or for a request
        already failed by the monitor — no longer map to a pending
        entry on that worker and are ignored.
        """
        with self._lock:
            entry = self._pending.get(request_id)
            if entry is None or entry[1] != worker_id:
                return
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.proved = True
            if self.lease_seconds is not None:
                self._leases[request_id] = (
                    time.monotonic() + self.lease_seconds)

    def _watch_workers(self) -> None:
        """Fail futures of dead workers, kill hung ones, respawn.

        One loop, two detectors: a *dead* worker (``is_alive`` false)
        crashed on its own; a *hung* worker is alive but holds a
        request whose lease deadline passed — the watchdog kills it.
        Either way the slot's futures fail immediately and the slot is
        respawned, unless the crash-storm breaker has opened.
        """
        while not self._stop.wait(MONITOR_INTERVAL):
            for worker_id in self._expired_workers():
                if self._stop.is_set():
                    return
                handle = self._handles[worker_id]
                self.timeouts += 1
                self._fail_pending(
                    worker_id,
                    f"worker {worker_id} (pid {handle.process.pid}) "
                    f"exceeded its {self.lease_seconds:g}s request "
                    f"lease and was killed",
                    WorkerTimeoutError)
                self._destroy(handle)
                self._respawn(worker_id)
            for worker_id in sorted(self._handles):
                handle = self._handles[worker_id]
                if handle.process.is_alive():
                    continue
                if self._stop.is_set():
                    return
                self._fail_pending(
                    worker_id,
                    f"worker {worker_id} (pid {handle.process.pid}) "
                    f"died with exit code "
                    f"{handle.process.exitcode}",
                    WorkerCrashedError)
                self._respawn(worker_id)

    def _expired_workers(self) -> List[int]:
        """Worker ids currently holding an expired request lease.

        Two cases count as expired:

        * a request the worker *started* more than ``lease_seconds``
          ago (the normal hung-mid-request case). Requests still
          queued behind it carry no lease — queue wait on a proven
          worker never triggers the watchdog;
        * a request dispatched more than ``lease_seconds`` ago to an
          incarnation that has never answered anything — a worker
          hung while loading its snapshot would otherwise sit on its
          queue forever without ever emitting a ``started`` marker.
        """
        if self.lease_seconds is None:
            return []
        now = time.monotonic()
        expired = set()
        with self._lock:
            for request_id, (_, worker_id) in self._pending.items():
                handle = self._handles.get(worker_id)
                if handle is None:
                    continue
                deadline = self._leases.get(request_id)
                if deadline is not None:
                    if deadline <= now:
                        expired.add(worker_id)
                elif not handle.proved:
                    dispatched = self._dispatched.get(request_id, now)
                    if now - dispatched > self.lease_seconds:
                        expired.add(worker_id)
        return sorted(expired)

    def _respawn(self, worker_id: int) -> None:
        """Refill a dead slot — unless this is a crash storm.

        Every respawn is timestamped; more than ``max_respawns``
        inside ``respawn_window`` seconds opens the breaker: the slot
        is removed (the pool shrinks to its survivors), ``degraded``
        flips, and no further respawns happen. Surviving workers keep
        answering; ``/healthz`` turns ``degraded``.
        """
        old = self._handles.get(worker_id)
        now = time.monotonic()
        while self._respawn_times and \
                now - self._respawn_times[0] > self.respawn_window:
            self._respawn_times.popleft()
        if self.degraded or \
                len(self._respawn_times) >= self.max_respawns:
            self.degraded = True
            self._handles.pop(worker_id, None)
            if old is not None:
                self._dispose_queue(old.queue)
            return
        self._respawn_times.append(now)
        faults.hit("pool.respawn")
        self._spawn(worker_id)
        self.respawns += 1
        if old is not None:
            self._dispose_queue(old.queue)

    def _fail_pending(self, worker_id: int, message: str,
                      exc_type: type = WorkerCrashedError) -> None:
        """Error out every future assigned to ``worker_id``."""
        with self._lock:
            doomed = [rid for rid, (_, wid) in self._pending.items()
                      if wid == worker_id]
            futures = [self._pending.pop(rid)[0] for rid in doomed]
            for rid in doomed:
                self._leases.pop(rid, None)
                self._dispatched.pop(rid, None)
        for future in futures:
            if not future.done():
                future.set_exception(exc_type(message))

    # ------------------------------------------------------------------
    def stats(self, timeout: Optional[float] = 5.0
              ) -> List[Dict[str, Any]]:
        """Per-worker identity/counter dicts, ordered by worker id.

        A worker that cannot answer — mid-respawn, hung, crashed, or
        just slow — is reported as a placeholder row with
        ``"alive": False`` and ``"unresponsive": True`` instead of
        being dropped or failing the scrape, so ``/metrics`` always
        shows one row per pool slot and never under-reports pool
        size. The timeout is deliberately short: a scrape must not
        hang behind a wedged worker (the watchdog deals with those).
        """
        futures = self.broadcast("stats", None)
        results: List[Dict[str, Any]] = []
        for worker_id in range(self.workers):
            future = futures.get(worker_id)
            if future is None:
                results.append({
                    "worker": worker_id, "alive": False,
                    "unresponsive": True,
                    "error": "slot removed by the crash-storm "
                             "breaker"})
                continue
            try:
                payload = future.result(timeout=timeout)
                payload["alive"] = True
                payload["unresponsive"] = False
            except (WorkerError, FutureTimeout) as error:
                payload = {"worker": worker_id, "alive": False,
                           "unresponsive": True, "error": str(error)}
            results.append(payload)
        return results
