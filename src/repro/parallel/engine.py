"""A drop-in engine facade that executes queries on a process pool.

CPython threads cannot run the enumeration kernels in parallel (the
GIL serializes them), so the service's thread pool only ever overlaps
I/O. :class:`ParallelQueryEngine` keeps the :class:`~repro.engine.
QueryEngine` surface the service already programs against — same
``execute``/``run_all``/``top_k``, same ``generation``/``snapshot_id``
/``swap_snapshot``, same ``top_k_stream`` for PDk sessions — but ships
each materialized query to a :class:`~repro.parallel.pool.WorkerPool`
whose workers are separate processes, each serving the same immutable
snapshot. N cores then give ~N× aggregate COMM-all throughput.

Division of labor:

* **workers** run ``execute`` (COMM-all / COMM-k) — the CPU-bound,
  stateless bulk of the traffic. Results come back as the same
  :class:`~repro.core.community.Community` dataclasses a local engine
  returns, and the worker's stage timings/counters are merged into
  the caller's :class:`~repro.engine.context.QueryContext`, so
  ``/metrics`` aggregation is unchanged;
* **the parent's local engine** serves everything stateful or cheap:
  PDk session streams (leases hold generators, which cannot cross a
  process boundary), projections requested directly, label lookups
  (``dbg``), and the generation/snapshot identity the session manager
  stale-checks against.

Hot swap: :meth:`swap_snapshot` swaps the local engine first (new
queries immediately see the new generation), then broadcasts a
``reload`` control task to every worker. Control tasks ride the same
per-worker queues as queries, so each worker finishes its in-flight
work, reloads, and keeps going — no query is dropped, and the next
``stats`` broadcast shows every worker on the new snapshot id.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.community import Community
from repro.engine.context import QueryContext, ensure_context
from repro.engine.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError, SnapshotError, WorkerError
from repro.parallel.pool import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_RESPAWN_WINDOW,
    WorkerPool,
)
from repro.snapshot.snapshot import Snapshot, load_snapshot
from repro.snapshot.store import locate_snapshot

#: Default number of worker processes.
DEFAULT_POOL_WORKERS = 2


class ParallelQueryEngine:
    """``QueryEngine``-shaped facade over a process worker pool."""

    def __init__(self, source: Union[str, Path],
                 workers: int = DEFAULT_POOL_WORKERS,
                 mp_method: Optional[str] = None,
                 lease_seconds: Optional[float] = DEFAULT_LEASE_SECONDS,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 respawn_window: float = DEFAULT_RESPAWN_WINDOW,
                 snapshot_mode: str = "copy",
                 result_cache_bytes: Optional[int] = None,
                 wal_path: Optional[Union[str, Path, Any]] = None
                 ) -> None:
        self.path = locate_snapshot(source)
        #: Requested materialization for parent and workers alike
        #: (``"copy"`` / ``"mmap"`` / ``"auto"``). In mmap mode all
        #: N+1 processes share one page-cache copy of the sections.
        self._mode_request = snapshot_mode
        #: The snapshot everyone (parent + workers) currently serves;
        #: kept so a failed swap can roll back to it.
        self._active = load_snapshot(self.path, mode=snapshot_mode)
        #: The delta WAL (an open ``WriteAheadLog`` or a path); the
        #: parent replays it here, workers replay the file themselves
        #: on every (re)spawn — only its *path* crosses the process
        #: boundary.
        self.wal = wal_path
        self.local = QueryEngine.from_snapshot(
            self._active, result_cache_bytes=result_cache_bytes,
            wal_path=wal_path)
        pool_wal = (str(getattr(wal_path, "path", wal_path))
                    if wal_path is not None else None)
        self.pool = WorkerPool(self.path, workers=workers,
                               mp_method=mp_method,
                               lease_seconds=lease_seconds,
                               max_respawns=max_respawns,
                               respawn_window=respawn_window,
                               snapshot_mode=snapshot_mode,
                               result_cache_bytes=result_cache_bytes,
                               wal_path=pool_wal)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = True) -> "ParallelQueryEngine":
        """Start the pool (blocks until workers loaded the snapshot)."""
        self.pool.start(wait_ready=wait_ready)
        return self

    def close(self) -> None:
        """Shut the pool down; the local engine needs no teardown."""
        self.pool.shutdown()

    def __enter__(self) -> "ParallelQueryEngine":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # identity / stateful surface — delegated to the local engine
    # ------------------------------------------------------------------
    @property
    def dbg(self):
        """The served database graph (labels, serialization)."""
        return self.local.dbg

    @property
    def cache(self):
        """The parent-side projection cache (sessions/projections)."""
        return self.local.cache

    @property
    def results(self):
        """The parent-side result cache (sessions and ``/healthz``;
        workers keep their own — see :meth:`worker_stats`)."""
        return self.local.results

    @property
    def generation(self) -> str:
        """Generation token — the snapshot id while unmodified."""
        return self.local.generation

    @property
    def generation_epoch(self) -> int:
        """Monotonic index-change count of the local engine."""
        return self.local.generation_epoch

    @property
    def snapshot_id(self) -> Optional[str]:
        """Id of the snapshot the parent (and workers) serve."""
        return self.local.snapshot_id

    @property
    def snapshot_loaded_at(self) -> Optional[float]:
        """Epoch seconds of the last snapshot load/swap."""
        return self.local.snapshot_loaded_at

    @property
    def snapshot_mode(self) -> Optional[str]:
        """Materialization actually in effect (``"copy"``/``"mmap"``)
        — an ``"auto"`` request resolves against the artifact. Same
        surface as :attr:`QueryEngine.snapshot_mode`."""
        return self.local.snapshot_mode

    @property
    def index(self):
        """The local engine's community index."""
        return self.local.index

    @property
    def dirty(self) -> bool:
        """True when deltas diverged the fleet from its snapshot."""
        return self.local.dirty

    @property
    def deltas_applied(self) -> int:
        """Deltas applied since the last snapshot load/swap."""
        return self.local.deltas_applied

    @property
    def base_snapshot_id(self) -> Optional[str]:
        """The snapshot the current delta state grew from."""
        return self.local.base_snapshot_id

    @property
    def applied_lsn(self) -> int:
        """Highest WAL LSN the parent engine has applied."""
        return self.local.applied_lsn

    def project(self, *args: Any, **kwargs: Any):
        """Projection on the parent (sessions and direct callers)."""
        return self.local.project(*args, **kwargs)

    def top_k_stream(self, *args: Any, **kwargs: Any):
        """PDk streams stay in-process — leases hold live iterators."""
        return self.local.top_k_stream(*args, **kwargs)

    # ------------------------------------------------------------------
    # execution — shipped to the pool
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec,
                context: Optional[QueryContext] = None
                ) -> List[Community]:
        """Run one spec on a pool worker; merge its stats locally."""
        future = self.pool.submit("query", spec)
        communities, timings, counters = future.result()
        self._merge(ensure_context(context), timings, counters)
        return list(communities)

    def run_all(self, spec: QuerySpec,
                context: Optional[QueryContext] = None
                ) -> List[Community]:
        """Materialized COMM-all on a worker."""
        if spec.mode != "all":
            raise QueryError(
                f"run_all needs an 'all' spec, got {spec.mode!r}")
        return self.execute(spec, context)

    def top_k(self, spec: QuerySpec,
              context: Optional[QueryContext] = None
              ) -> List[Community]:
        """COMM-k on a worker."""
        if spec.mode != "topk":
            raise QueryError(
                f"top_k needs a 'topk' spec, got {spec.mode!r}")
        return self.execute(spec, context)

    def iter_all(self, spec: QuerySpec,
                 context: Optional[QueryContext] = None
                 ) -> Iterator[Community]:
        """API parity with ``QueryEngine.iter_all`` (materialized —
        answers cross a process boundary, so laziness is gone)."""
        return iter(self.run_all(spec, context))

    def execute_batch(self, specs: Sequence[QuerySpec],
                      contexts: Optional[Sequence[QueryContext]] = None
                      ) -> List[List[Community]]:
        """Fan a list of specs across the pool; results in order.

        All specs are queued before any result is awaited, so the
        batch runs on as many workers (cores) as the pool has. With
        ``contexts`` given (one per spec), each query's worker-side
        stats merge into its own context.
        """
        futures = [self.pool.submit("query", spec) for spec in specs]
        results: List[List[Community]] = []
        for position, future in enumerate(futures):
            communities, timings, counters = future.result()
            if contexts is not None:
                self._merge(contexts[position], timings, counters)
            results.append(list(communities))
        return results

    def warm(self, specs: Sequence[QuerySpec]) -> int:
        """Pre-warm every result cache in the pool (and the parent's).

        The specs are broadcast as one ``warm`` control task per
        worker — each worker executes them into its private cache and
        reports only a count, so warming N workers costs no community
        serialization. Returns the parent-side warmed count (the
        fleet's caches are private; a dead worker is skipped, not
        fatal — warming is an optimization, never a failure source).
        """
        specs = list(specs)
        warmed = self.local.warm(specs)
        for future in self.pool.broadcast("warm", specs).values():
            try:
                future.result()
            except Exception:  # noqa: BLE001 — best effort: a worker
                # that failed to warm still answers, just cold.
                pass
        return warmed

    def apply_delta(self, delta: Any, banks_reweight: bool = False,
                    lsn: Optional[int] = None):
        """Apply a delta on the parent, then fan it to every worker.

        The broadcast ships the delta's wire form tagged with its LSN;
        each worker applies it through the same idempotent-per-LSN
        path, so a worker that *also* replays the WAL (a respawn
        racing this broadcast) converges rather than double-applies.

        A worker that fails the broadcast is **kicked** when a WAL is
        attached — the monitor respawns it and the fresh incarnation
        replays the full suffix, converging without bookkeeping. With
        no WAL there is no way to bring a diverged worker back, so
        the failure propagates as :class:`~repro.exceptions.
        WorkerError` instead of leaving the pool split-brained.
        """
        from repro.wal.records import delta_to_wire
        result = self.local.apply_delta(delta, banks_reweight,
                                        lsn=lsn)
        payload = (lsn, delta_to_wire(delta), bool(banks_reweight))
        failures: Dict[int, Exception] = {}
        for worker_id, future in self.pool.broadcast(
                "delta", payload).items():
            try:
                future.result()
            except Exception as error:  # noqa: BLE001 — handled per
                # worker below (kick or propagate).
                failures[worker_id] = error
        if failures:
            if self.wal is not None:
                for worker_id in sorted(failures):
                    self.pool.kick(worker_id)
            else:
                detail = "; ".join(
                    f"worker {wid}: {error}"
                    for wid, error in sorted(failures.items()))
                raise WorkerError(
                    f"delta broadcast failed on "
                    f"{len(failures)}/{self.pool.workers} workers "
                    f"with no WAL to replay from ({detail}); "
                    f"restart the service to reconverge")
        return result

    @staticmethod
    def _merge(context: QueryContext, timings: Dict[str, float],
               counters: Dict[str, int]) -> None:
        """Fold a worker's stage stats into a parent-side context."""
        for name, seconds in timings.items():
            context.add_time(name, seconds)
        for name, value in counters.items():
            context.count(name, value)

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    def swap_snapshot(self, snapshot: Snapshot) -> bool:
        """Swap the parent, then fan the reload out to every worker.

        Blocks until each worker acknowledged the reload; because the
        control task queues behind in-flight queries, nothing is
        dropped. Returns whether the parent actually changed artifact
        (a content-identical reload is a no-op everywhere).

        **All-or-nothing:** when any worker fails its reload (corrupt
        or vanished snapshot directory, worker-side load error), the
        parent swaps back to the previous snapshot, every worker is
        re-pointed at it, and :class:`~repro.exceptions.SnapshotError`
        is raised — the pool never serves two generations at once,
        and a failed ``POST /admin/reload`` keeps answering from the
        old graph. The pool's ``snapshot_path`` tracks every swap and
        rollback, so a worker the monitor respawns (crash, watchdog
        kill) always loads the currently adopted artifact too.
        """
        previous = self._active
        changed = self.local.swap_snapshot(snapshot)
        # Re-point respawns *before* the broadcast: a worker the
        # monitor replaces from here on must load the artifact being
        # adopted, never the one the pool was constructed with —
        # otherwise a single respawn would put two generations in
        # service at once.
        self.pool.snapshot_path = str(snapshot.path)
        failures: Dict[int, Exception] = {}
        for worker_id, future in self.pool.broadcast(
                "reload", str(snapshot.path)).items():
            try:
                future.result()
            except Exception as error:  # noqa: BLE001 — collected,
                # the swap is rolled back below.
                failures[worker_id] = error
        if failures:
            self.pool.snapshot_path = str(previous.path)
            self.local.swap_snapshot(previous)
            for future in self.pool.broadcast(
                    "reload", str(previous.path)).values():
                try:
                    future.result()
                except Exception:  # noqa: BLE001 — best effort: a
                    # worker that failed both ways answers from its
                    # old in-memory engine anyway.
                    pass
            detail = "; ".join(
                f"worker {wid}: {error}"
                for wid, error in sorted(failures.items()))
            raise SnapshotError(
                f"reload to {snapshot.id} failed on "
                f"{len(failures)}/{self.pool.workers} workers "
                f"({detail}); rolled back to {previous.id}")
        self._active = snapshot
        return changed

    def load_snapshot(self, path: Union[str, Path],
                      verify: bool = True) -> Snapshot:
        """Load ``path`` (in the configured mode) and swap everyone
        onto it."""
        snapshot = load_snapshot(path, verify=verify,
                                 mode=self._mode_request)
        self.swap_snapshot(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured pool size."""
        return self.pool.workers

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Identity + counters per worker (see ``/metrics``)."""
        return self.pool.stats()
