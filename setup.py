"""Setuptools shim.

The project is declared in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(where PEP 660 editable installs are unavailable) via::

    python setup.py develop

``pip install -e .`` works too wherever ``wheel`` is present.
"""

from setuptools import setup

setup()
