"""Reload rollback: a failed hot swap keeps serving the old graph.

Two failure planes:

* the *parent* rejects a snapshot that fails checksum verification at
  load time (real on-disk damage — no failpoint needed);
* a *worker* fails its reload broadcast (injected via
  ``worker.0.reload=once:raise``): the engine must roll every worker
  and the parent back to the previous snapshot, raise, and keep
  answering from the old graph — then succeed on a later retry once
  the fault has passed.
"""

import json
import os
import signal

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QuerySpec
from repro.exceptions import SnapshotError
from repro.parallel import ParallelQueryEngine
from repro.service import CommunityService
from repro.snapshot import SnapshotStore

from chaos_helpers import publish_fig4, wait_until


def post(service, path, payload):
    """Drive one POST through the service router, no sockets."""
    status, _template, body, _ctype = service.handle(
        "POST", path, json.dumps(payload).encode("utf-8"))
    return status, json.loads(body)


class TestWorkerReloadRollback:
    def test_failed_worker_reload_rolls_back_then_recovers(
            self, fig4_store, monkeypatch):
        old_id = SnapshotStore(fig4_store).latest_id()
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.0.reload=once:raise")
        with ParallelQueryEngine(fig4_store, workers=2) as engine:
            with CommunityService(engine, port=0,
                                  snapshot_source=fig4_store) \
                    as service:
                new_id = publish_fig4(fig4_store, radius=4.0).id
                assert new_id != old_id

                # First reload: worker 0's failpoint fires, the swap
                # is rolled back and surfaced as a server error.
                status, body = post(service, "/admin/reload", {})
                assert status == 500
                assert "rolled back" in body["error"]
                assert old_id in body["error"]

                # Everyone — parent and both workers — still serves
                # the old snapshot, and queries still answer.
                assert engine.snapshot_id == old_id
                assert all(s["snapshot_id"] == old_id
                           for s in engine.worker_stats())
                spec = QuerySpec.comm_k(list(FIG4_QUERY), 1,
                                        FIG4_RMAX)
                assert len(engine.top_k(spec)) == 1

                # The fault was once-only: the retry goes through and
                # moves every worker to the new artifact.
                status, body = post(service, "/admin/reload", {})
                assert status == 200
                assert body["snapshot"] == new_id
                assert all(s["snapshot_id"] == new_id
                           for s in engine.worker_stats())

    def test_respawn_after_swap_loads_the_adopted_snapshot(
            self, fig4_store):
        """A worker respawned *after* a successful hot swap must load
        the newly adopted artifact, not the one the pool was
        constructed with — one respawn must never put two snapshot
        generations in service at once."""
        old_id = SnapshotStore(fig4_store).latest_id()
        with ParallelQueryEngine(fig4_store, workers=2) as engine:
            new = publish_fig4(fig4_store, radius=4.0)
            assert new.id != old_id
            engine.load_snapshot(SnapshotStore(fig4_store).resolve())
            assert engine.pool.snapshot_path == str(new.path)

            victim = engine.pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: engine.pool.alive == 2
                and engine.pool.pids().get(0) not in (None, victim))
            assert wait_until(lambda: all(
                row.get("snapshot_id") == new.id
                for row in engine.worker_stats()))

    def test_rollback_re_points_respawns_at_the_old_snapshot(
            self, fig4_store, monkeypatch):
        """After a failed swap rolls back, a respawned worker must
        load the *previous* (still-serving) artifact."""
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.0.reload=once:raise")
        with ParallelQueryEngine(fig4_store, workers=2) as engine:
            active = engine._active
            publish_fig4(fig4_store, radius=4.0)
            with pytest.raises(SnapshotError):
                engine.load_snapshot(
                    SnapshotStore(fig4_store).resolve())
            assert engine.pool.snapshot_path == str(active.path)

    def test_engine_swap_raises_and_rolls_back(self, fig4_store,
                                               monkeypatch):
        old_id = SnapshotStore(fig4_store).latest_id()
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.0.reload=once:raise")
        with ParallelQueryEngine(fig4_store, workers=2) as engine:
            publish_fig4(fig4_store, radius=4.0)
            with pytest.raises(SnapshotError) as excinfo:
                engine.load_snapshot(
                    SnapshotStore(fig4_store).resolve())
            assert "rolled back" in str(excinfo.value)
            assert engine.snapshot_id == old_id


class TestParentLoadRejection:
    def test_damaged_snapshot_is_rejected_before_any_swap(
            self, fig4_store):
        """Real on-disk damage: flip a byte in the newest snapshot's
        postings section. ``/admin/reload`` must answer 4xx and keep
        the engine on the old artifact."""
        old_id = SnapshotStore(fig4_store).latest_id()
        with ParallelQueryEngine(fig4_store, workers=2) as engine:
            damaged = publish_fig4(fig4_store, radius=4.0)
            target = damaged.path / "postings.bin"
            data = bytearray(target.read_bytes())
            data[3] ^= 0x01
            target.write_bytes(bytes(data))

            with CommunityService(engine, port=0,
                                  snapshot_source=fig4_store) \
                    as service:
                status, body = post(service, "/admin/reload", {})
                assert status == 400
                assert "checksum" in body["error"]
                assert engine.snapshot_id == old_id
                assert all(s["snapshot_id"] == old_id
                           for s in engine.worker_stats())
                spec = QuerySpec.comm_k(list(FIG4_QUERY), 1,
                                        FIG4_RMAX)
                assert len(engine.top_k(spec)) == 1
