"""Chaos scenarios for the delta WAL's four failpoints.

``wal.append`` fires *before* the frame is written — a failed append
must acknowledge nothing, log nothing, and apply nothing
(WAL-before-apply). ``wal.fsync`` fires after write+flush — the frame
is in the log but the client saw a 500, so restart replays it
(at-least-once on failure, documented). ``wal.replay.record`` aborts a
startup replay mid-stream. ``worker.N.delta`` fails one worker's
broadcast: with a WAL attached the worker is kicked and its respawn
replays the suffix back into convergence instead of splitting the
pool's brain.
"""

import json

from repro import faults
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine, QuerySpec
from repro.exceptions import FaultInjectedError
from repro.parallel import ParallelQueryEngine
from repro.service import CommunityService
from repro.snapshot import SnapshotStore
from repro.wal import WriteAheadLog, read_wal

from chaos_helpers import publish_fig4, wait_until

import pytest

DELTA_BODY = {"edges": [[0, 3, 0.25]]}


def post(service, path, payload):
    status, _template, body, _ctype = service.handle(
        "POST", path, json.dumps(payload).encode("utf-8"))
    return status, json.loads(body)


@pytest.fixture()
def served(fig4_store, tmp_path):
    """A snapshot-backed engine + service with a live WAL."""
    snap = SnapshotStore(fig4_store).load("latest", verify=False)
    wal = WriteAheadLog(tmp_path / "deltas.wal", fsync="always")
    engine = QueryEngine.from_snapshot(snap.path, wal_path=wal)
    with CommunityService(engine, port=0, wal=wal) as service:
        yield service, wal, snap
    wal.close()


class TestAppendFailpoint:
    def test_failed_append_acknowledges_and_applies_nothing(
            self, served):
        service, wal, _snap = served
        faults.activate("wal.append", "once:raise")
        status, body = post(service, "/admin/delta", DELTA_BODY)
        assert status == 500
        assert "failpoint" in body["error"]
        # WAL-before-apply: no frame on disk, no delta in the engine
        assert wal.lsn == 0
        assert read_wal(wal.path) == []
        assert service.engine.dirty is False
        # the failure is transient — the retry is acknowledged
        status, body = post(service, "/admin/delta", DELTA_BODY)
        assert status == 200
        assert body["lsn"] == 1
        assert service.engine.deltas_applied == 1


class TestFsyncFailpoint:
    def test_failed_fsync_keeps_frame_but_not_ack(self, served):
        service, wal, snap = served
        faults.activate("wal.fsync", "once:raise")
        status, _body = post(service, "/admin/delta", DELTA_BODY)
        assert status == 500
        # the frame was written+flushed before fsync fired: it is in
        # the log (and will replay on restart) but was never
        # acknowledged or applied — at-least-once on failure.
        assert wal.lsn == 1
        assert service.engine.dirty is False
        recovered = QueryEngine.from_snapshot(snap.path)
        faults.clear()
        from repro.wal import replay
        assert replay(recovered, wal) == 1
        assert recovered.applied_lsn == 1
        assert recovered.dirty is True


class TestReplayFailpoint:
    def test_aborted_replay_surfaces_not_swallows(self, fig4_store,
                                                  tmp_path):
        snap = SnapshotStore(fig4_store).load("latest", verify=False)
        with WriteAheadLog(tmp_path / "d.wal", fsync="off") as wal:
            from repro.text.maintenance import GraphDelta
            wal.append_delta(GraphDelta(new_edges=[(0, 3, 0.25)]),
                             base=snap.id)
            faults.activate("wal.replay.record", "once:raise")
            with pytest.raises(FaultInjectedError):
                QueryEngine.from_snapshot(snap.path, wal_path=wal)
            # the fault was transient; recovery then succeeds
            engine = QueryEngine.from_snapshot(snap.path,
                                               wal_path=wal)
            assert engine.deltas_applied == 1


class TestWorkerDeltaBroadcast:
    def test_failed_worker_is_kicked_and_respawn_converges(
            self, fig4_store, tmp_path, monkeypatch):
        snap = SnapshotStore(fig4_store).load("latest", verify=False)
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.0.delta=once:raise")
        spec = QuerySpec(keywords=tuple(FIG4_QUERY), rmax=FIG4_RMAX)
        with WriteAheadLog(tmp_path / "d.wal", fsync="off") as wal:
            with ParallelQueryEngine(str(snap.path), workers=2,
                                     wal_path=wal) as engine:
                from repro.text.maintenance import GraphDelta
                delta = GraphDelta(new_edges=[(0, 3, 0.25)])
                lsn = wal.append_delta(delta, base=snap.id)
                pids_before = engine.pool.pids()
                engine.apply_delta(delta, lsn=lsn)  # kicks worker 0
                assert wait_until(
                    lambda: engine.pool.alive == 2
                    and engine.pool.pids().get(0) not in
                    (None, pids_before[0]))
                expected = [c.nodes for c in engine.run_all(spec)]
                # every worker (including the respawn, which replayed
                # the WAL suffix) answers from the delta'd graph
                for _ in range(6):  # round-robins across both
                    assert [c.nodes
                            for c in engine.run_all(spec)] \
                        == expected
                stats = {s["worker"]: s
                         for s in engine.worker_stats()}
                assert len(stats) == 2

    def test_no_wal_broadcast_failure_raises(self, fig4_store,
                                             monkeypatch):
        from repro.exceptions import WorkerError
        snap = SnapshotStore(fig4_store).load("latest", verify=False)
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.0.delta=once:raise")
        with ParallelQueryEngine(str(snap.path), workers=2) \
                as engine:
            from repro.text.maintenance import GraphDelta
            delta = GraphDelta(new_edges=[(0, 3, 0.25)])
            with pytest.raises(WorkerError, match="no WAL"):
                engine.apply_delta(delta, lsn=None)
