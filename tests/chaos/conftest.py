"""Shared fixtures for the chaos suite.

Every test runs against a clean failpoint registry: the autouse
fixture clears armed sites before *and* after each test, so a chaos
scenario can never leak into its neighbors (or into the rest of the
test session). Worker-process scenarios arm failpoints through the
``REPRO_FAILPOINTS`` environment variable (``monkeypatch.setenv``),
which forked workers pick up via ``faults.reload_env()`` at startup;
same-process scenarios use ``faults.activate`` directly.
"""

import pytest

from repro import faults

from chaos_helpers import publish_fig4


@pytest.fixture(autouse=True)
def clean_failpoints(monkeypatch):
    """No armed sites and no env spec before or after any test."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


@pytest.fixture()
def fig4_store(tmp_path):
    """A store with one published fig4 snapshot; returns its root."""
    root = tmp_path / "store"
    publish_fig4(root)
    return root
