"""Chaos: a poisoned result cache degrades to recomputation.

The ``results.cache.lookup`` failpoint fires inside
:meth:`~repro.engine.results.ResultCache.lookup` — the one place
every cached-answer path (fetch, attach, run_all, top_k, sessions)
funnels through. With it armed, the engine must keep returning
**correct** answers (recomputed, never stale or truncated), the
service must keep answering 200, and the failures must be visible as
``result_cache_errors`` — latency is the only acceptable casualty.
"""

import pytest

from repro import faults
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryContext, QueryEngine, QuerySpec
from repro.service import CommunityService, ServiceClient

FIG4_TOTAL = 5


def _fingerprint(communities):
    return [(c.core, c.cost, c.centers, c.nodes, c.edges)
            for c in communities]


@pytest.fixture()
def engine():
    from repro.datasets.paper_example import figure4_graph
    e = QueryEngine(figure4_graph())
    e.build_index(radius=FIG4_RMAX)
    return e


def _spec(k=3):
    return QuerySpec(tuple(FIG4_QUERY), FIG4_RMAX, mode="topk", k=k)


class TestPoisonedLookup:
    def test_lookup_raise_degrades_to_recompute(self, engine):
        expected = _fingerprint(engine.top_k(_spec()))
        faults.activate("results.cache.lookup", "always:raise")
        ctx = QueryContext()
        got = engine.top_k(_spec(), ctx)
        assert _fingerprint(got) == expected
        assert ctx.counter("result_cache_errors") == 1
        assert ctx.counter("result_cache_hits") == 0
        assert engine.results.stats.errors == 1

    def test_intermittent_poison_heals(self, engine):
        expected = _fingerprint(engine.top_k(_spec()))
        faults.activate("results.cache.lookup", "nth(1):raise")
        assert _fingerprint(engine.top_k(_spec())) == expected
        # The failpoint is spent: the next repeat is a clean hit.
        ctx = QueryContext()
        assert _fingerprint(engine.top_k(_spec(), ctx)) == expected
        assert ctx.counter("result_cache_hits") == 1

    def test_comm_all_and_streams_degrade_too(self, engine):
        spec_all = QuerySpec(tuple(FIG4_QUERY), FIG4_RMAX, mode="all")
        everything = _fingerprint(engine.run_all(spec_all))
        engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX).take(2)
        faults.activate("results.cache.lookup", "always:raise")
        assert _fingerprint(engine.run_all(spec_all)) == everything
        stream = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        costs = [c.cost for c in stream.take(100)]
        assert len(costs) == FIG4_TOTAL
        assert costs == sorted(costs)
        assert engine.results.stats.errors >= 2

    def test_service_answers_200_with_errors_counted(self, engine):
        with CommunityService(engine, port=0).start() as service:
            client = ServiceClient(service.url, timeout=30.0)
            clean = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3)
            assert clean["cached"] is False
            warm = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3)
            assert warm["cached"] is True
            faults.activate("results.cache.lookup", "always:raise")
            poisoned = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3)
            assert poisoned["cached"] is False
            assert poisoned["communities"] == clean["communities"]
            assert poisoned["stats"]["counters"][
                "result_cache_errors"] == 1
            faults.clear()
            metrics = client.metrics()
            assert "repro_result_cache_errors_total 1" in metrics
