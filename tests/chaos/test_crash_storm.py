"""Crash-storm circuit breaker: shrink, degrade, keep serving.

Worker 0 is armed (via the inherited environment) to die instantly on
every query it receives, so each respawned incarnation crashes again —
a deterministic crash storm confined to one slot. The breaker must
stop burning respawns, remove the slot, flip the pool degraded, and
leave worker 1 answering.
"""

import json

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.exceptions import WorkerCrashedError
from repro.parallel import ParallelQueryEngine
from repro.engine import QuerySpec
from repro.service import CommunityService

from chaos_helpers import POLL_SECONDS, wait_until


@pytest.fixture()
def storming_engine(fig4_store, monkeypatch):
    """A 2-worker engine whose slot 0 crashes on every query."""
    monkeypatch.setenv("REPRO_FAILPOINTS",
                       "worker.0.exec=always:exit(3)")
    with ParallelQueryEngine(fig4_store, workers=2,
                             lease_seconds=30.0, max_respawns=2,
                             respawn_window=60.0) as engine:
        yield engine


def crash_until_breaker_opens(pool, spec):
    """Feed slot 0 queries until the breaker removes it."""
    for _ in range(10):
        if 0 not in pool._handles:
            break
        try:
            future = pool.submit("query", spec, worker_id=0)
        except KeyError:
            break                    # monitor removed the slot mid-loop
        with pytest.raises(WorkerCrashedError):
            future.result(timeout=POLL_SECONDS)
        # Either a replacement came up or the breaker opened.
        assert wait_until(
            lambda: 0 not in pool._handles
            or pool._handles[0].process.is_alive())
    assert wait_until(lambda: pool.degraded)
    assert wait_until(lambda: 0 not in pool._handles)


class TestCrashStormBreaker:
    def test_breaker_opens_shrinks_and_survivors_serve(
            self, storming_engine):
        pool = storming_engine.pool
        spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
        crash_until_breaker_opens(pool, spec)
        assert pool.respawns <= pool.max_respawns

        # The surviving worker keeps answering (round-robin now only
        # ever lands on slot 1).
        for _ in range(3):
            assert len(storming_engine.top_k(spec)) == 1

        # Stats still report one row per configured slot: the removed
        # slot as an unresponsive placeholder, the survivor live.
        rows = pool.stats()
        assert [row["worker"] for row in rows] == [0, 1]
        assert rows[0]["alive"] is False
        assert rows[0]["unresponsive"] is True
        assert "breaker" in rows[0]["error"]
        assert rows[1]["alive"] is True
        assert rows[1]["unresponsive"] is False

    def test_degraded_health_and_metrics(self, storming_engine):
        pool = storming_engine.pool
        spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
        crash_until_breaker_opens(pool, spec)

        with CommunityService(storming_engine, port=0) as service:
            status, _t, body, _c = service.handle("GET", "/healthz",
                                                  b"")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert health["pool_degraded"] is True
            assert health["pool_alive"] == 1

            metrics = service.render_metrics()
            assert "repro_pool_degraded 1" in metrics
            assert "repro_worker_restarts_total" in metrics
            assert "repro_pool_timeouts_total" in metrics
            # One info row per configured slot, even post-shrink.
            rows = [line for line in metrics.splitlines()
                    if line.startswith("repro_worker_info{")]
            assert len(rows) == 2

    def test_empty_pool_fails_fast_not_forever(self, fig4_store,
                                               monkeypatch):
        """With every slot storming, the breaker empties the pool and
        submissions fail immediately instead of hanging."""
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.exec=always:exit(3)")
        with ParallelQueryEngine(fig4_store, workers=1,
                                 max_respawns=1,
                                 respawn_window=60.0) as engine:
            pool = engine.pool
            spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
            for _ in range(3):
                if not pool._handles:
                    break
                with pytest.raises(WorkerCrashedError):
                    pool.request("query", spec, timeout=POLL_SECONDS)
                wait_until(lambda: not pool._handles
                           or pool._handles[0].process.is_alive())
            assert wait_until(lambda: pool.degraded)
            assert wait_until(lambda: not pool._handles)
            with pytest.raises(WorkerCrashedError) as excinfo:
                pool.submit("query", spec)
            assert "no workers left" in str(excinfo.value)
