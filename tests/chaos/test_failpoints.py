"""The failpoint subsystem itself: grammar, triggers, actions.

Everything here is same-process and fully deterministic — the
``prob`` trigger is asserted against the exact stream its seed
produces, and byte corruption against its fixed offsets.
"""

import random
import threading
import time

import pytest

from repro import faults
from repro.exceptions import (
    FaultInjectedError,
    SnapshotIntegrityError,
    WorkerTimeoutError,
)
from repro.faults import FailpointSpecError
from repro.service.errors import Overloaded


class TestTriggers:
    def test_unarmed_site_is_inert(self):
        assert not faults.is_armed()
        faults.hit("nowhere")                       # no-op, no error
        assert faults.corrupt("nowhere", b"abc") == b"abc"

    def test_off_registers_but_never_fires(self):
        faults.activate("site", "off")
        assert "site" in faults.active_sites()
        assert not faults.is_armed()                # fast path stays off
        faults.hit("site")

    def test_once_fires_exactly_once(self):
        faults.activate("site", "once:raise")
        with pytest.raises(FaultInjectedError):
            faults.hit("site")
        for _ in range(5):
            faults.hit("site")                      # spent

    def test_always_fires_every_time(self):
        faults.activate("site", "always:raise")
        for _ in range(3):
            with pytest.raises(FaultInjectedError):
                faults.hit("site")

    def test_nth_fires_on_exactly_the_nth_call(self):
        faults.activate("site", "nth(3):raise")
        faults.hit("site")
        faults.hit("site")
        with pytest.raises(FaultInjectedError):
            faults.hit("site")
        faults.hit("site")                          # 4th: past it

    def test_prob_replays_its_seeded_stream_exactly(self):
        faults.activate("site", "prob(0.5, 42):raise")
        rng = random.Random(42)
        expected = [rng.random() < 0.5 for _ in range(50)]
        observed = []
        for _ in range(50):
            try:
                faults.hit("site")
                observed.append(False)
            except FaultInjectedError:
                observed.append(True)
        assert observed == expected
        assert any(observed) and not all(observed)

    def test_prob_zero_and_one_are_degenerate(self):
        faults.activate("never", "prob(0.0, 1):raise")
        faults.activate("ever", "prob(1.0, 1):raise")
        for _ in range(10):
            faults.hit("never")
            with pytest.raises(FaultInjectedError):
                faults.hit("ever")


class TestActions:
    def test_raise_default_is_fault_injected_error(self):
        faults.activate("site", "once:raise")
        with pytest.raises(FaultInjectedError) as excinfo:
            faults.hit("site")
        assert "site" in str(excinfo.value)

    def test_raise_named_exception_from_exceptions_module(self):
        faults.activate("site", "always:raise(WorkerTimeoutError)")
        with pytest.raises(WorkerTimeoutError):
            faults.hit("site")

    def test_raise_named_exception_from_service_errors(self):
        faults.activate("site", "always:raise(Overloaded)")
        with pytest.raises(Overloaded):
            faults.hit("site")

    def test_raise_unknown_exception_name_is_a_spec_error(self):
        faults.activate("site", "always:raise(NoSuchError)")
        with pytest.raises(FailpointSpecError):
            faults.hit("site")

    def test_sleep_blocks_for_the_given_duration(self):
        faults.activate("site", "once:sleep(0.2)")
        start = time.monotonic()
        faults.hit("site")
        assert time.monotonic() - start >= 0.2
        start = time.monotonic()
        faults.hit("site")                          # spent: instant
        assert time.monotonic() - start < 0.2

    def test_corrupt_flips_fixed_offsets_deterministically(self):
        payload = bytes(range(10))
        faults.activate("site", "always:corrupt")
        damaged = faults.corrupt("site", payload)
        assert damaged != payload
        assert damaged == faults.corrupt("site", payload)  # replayable
        expected = bytearray(payload)
        for offset in (0, len(payload) // 2, len(payload) - 1):
            expected[offset] ^= 0xFF
        assert damaged == bytes(expected)

    def test_corrupt_of_empty_payload_still_differs(self):
        faults.activate("site", "always:corrupt-bytes")
        assert faults.corrupt("site", b"") != b""

    def test_corrupt_action_at_hit_site_is_a_noop(self):
        faults.activate("site", "always:corrupt")
        faults.hit("site")                          # nothing to damage

    def test_raise_action_at_corrupt_site_raises(self):
        faults.activate("site", "always:raise")
        with pytest.raises(FaultInjectedError):
            faults.corrupt("site", b"abc")


class TestConfiguration:
    def test_configure_parses_multiple_sites(self):
        faults.configure(
            "a=once:raise; b=nth(2):sleep(0.1), c=prob(0.5, 7):exit")
        assert set(faults.active_sites()) == {"a", "b", "c"}

    def test_separators_inside_parens_do_not_split(self):
        faults.configure("a=prob(0.5, 42):raise;b=once:raise")
        assert set(faults.active_sites()) == {"a", "b"}

    def test_bad_entry_raises_spec_error(self):
        for bad in ("justaname", "=once:raise", "a=once",
                    "a=nth(zero):raise", "a=prob(2.0, 1):raise",
                    "a=once:explode", "a=once:sleep(fast)"):
            with pytest.raises(FailpointSpecError):
                faults.configure(bad)

    def test_clear_disarms_one_or_all(self):
        faults.activate("a", "once:raise")
        faults.activate("b", "once:raise")
        faults.clear("a")
        assert set(faults.active_sites()) == {"b"}
        faults.clear()
        assert faults.active_sites() == {}
        assert not faults.is_armed()

    def test_reload_env_mirrors_the_environment(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "x=once:raise")
        faults.reload_env()
        assert set(faults.active_sites()) == {"x"}
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reload_env()
        assert faults.active_sites() == {}


class TestConcurrency:
    def test_concurrent_arm_disarm_never_corrupts_the_registry(self):
        """Arming and disarming from several threads at once must
        neither raise (registry mutated during the fast-path flag
        recomputation) nor leave the flag stale relative to the
        registry."""
        errors = []

        def hammer(lane):
            try:
                for n in range(200):
                    site = f"hammer.{lane}.{n % 5}"
                    # Armed but effectively inert: nth far beyond any
                    # call count this test makes.
                    faults.activate(site, "nth(1000000):sleep(0)")
                    faults.hit(site)
                    faults.clear(site)
            except Exception as error:  # noqa: BLE001 — collected
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(lane,))
                   for lane in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        faults.clear()
        assert faults.active_sites() == {}
        assert not faults.is_armed()


class TestSnapshotSites:
    def test_corrupted_section_fails_checksum_verification(
            self, fig4_store):
        """An armed corrupt site on section reads must be caught by
        the snapshot layer's own integrity checking — the graph never
        materializes from damaged bytes."""
        from repro.snapshot import SnapshotStore
        from repro.snapshot.snapshot import load_snapshot

        path = SnapshotStore(fig4_store).resolve()
        load_snapshot(path)                         # sane baseline
        faults.activate("snapshot.section", "always:corrupt")
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)
        faults.clear()
        load_snapshot(path)                         # damage-free again

    def test_targeted_section_corruption_also_caught(self,
                                                     fig4_store):
        from repro.snapshot import SnapshotStore
        from repro.snapshot.snapshot import load_snapshot

        path = SnapshotStore(fig4_store).resolve()
        faults.activate("snapshot.section.graph", "always:corrupt")
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)

    def test_snapshot_load_site_raises(self, fig4_store):
        from repro.snapshot import SnapshotStore
        from repro.snapshot.snapshot import load_snapshot

        path = SnapshotStore(fig4_store).resolve()
        faults.activate("snapshot.load", "once:raise")
        with pytest.raises(FaultInjectedError):
            load_snapshot(path)
        load_snapshot(path)                         # next load is clean


class TestMmapSnapshotSites:
    """The mmap load path hits the same failpoints as the copy path
    and fails with the same *typed* errors — never a bare numpy or
    struct error escaping from the view layer."""

    def test_corrupted_section_is_a_typed_error_in_mmap_mode(
            self, fig4_store):
        from repro.exceptions import SnapshotError
        from repro.snapshot import SnapshotStore
        from repro.snapshot.snapshot import load_snapshot

        path = SnapshotStore(fig4_store).resolve()
        assert load_snapshot(path, mode="mmap").mode == "mmap"
        faults.activate("snapshot.section", "always:corrupt")
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            load_snapshot(path, mode="mmap")
        assert isinstance(excinfo.value, SnapshotError)
        faults.clear()
        load_snapshot(path, mode="mmap")            # clean again

    @pytest.mark.parametrize("section",
                             ("graph", "nodes", "index", "postings"))
    def test_each_mapped_section_is_checksummed(self, fig4_store,
                                                section):
        from repro.snapshot import SnapshotStore
        from repro.snapshot.snapshot import load_snapshot

        path = SnapshotStore(fig4_store).resolve()
        faults.activate(f"snapshot.section.{section}",
                        "always:corrupt")
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path, mode="mmap")

    def test_load_site_fires_before_any_mapping(self, fig4_store):
        from repro.snapshot import SnapshotStore
        from repro.snapshot.snapshot import load_snapshot

        path = SnapshotStore(fig4_store).resolve()
        faults.activate("snapshot.load", "once:raise")
        with pytest.raises(FaultInjectedError):
            load_snapshot(path, mode="mmap")
        load_snapshot(path, mode="mmap")
