"""Hung-worker watchdog: lease expiry, kill escalation, 503 mapping.

The hang is injected deterministically: ``worker.0.exec=once:sleep``
armed through the environment, which only the first incarnation of
worker 0 inherits (the env is cleared before the doomed request, so
the watchdog's replacement forks with a clean registry).
"""

import json
import os
import signal

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine, QuerySpec
from repro.exceptions import WorkerTimeoutError
from repro.parallel import WorkerPool
from repro.snapshot import SnapshotStore
from repro.service import CommunityService

from chaos_helpers import POLL_SECONDS, wait_until


@pytest.fixture()
def snapshot_path(fig4_store):
    return SnapshotStore(fig4_store).resolve()


class TestWatchdog:
    def test_hung_worker_is_killed_and_caller_gets_timeout(
            self, snapshot_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.0.exec=once:sleep(60)")
        pool = WorkerPool(snapshot_path, workers=2,
                          lease_seconds=1.0).start()
        try:
            # The workers are up and armed; clear the env so the
            # watchdog's replacement forks without the failpoint.
            monkeypatch.delenv("REPRO_FAILPOINTS")
            hung_pid = pool.pids()[0]
            spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
            future = pool.submit("query", spec, worker_id=0)
            with pytest.raises(WorkerTimeoutError) as excinfo:
                future.result(timeout=POLL_SECONDS)
            assert "lease" in str(excinfo.value)
            assert pool.timeouts >= 1

            # The slot is respawned (new pid) and serves again.
            assert wait_until(
                lambda: pool.alive == 2
                and pool.pids().get(0) not in (None, hung_pid))
            replay = pool.submit("query", spec, worker_id=0)
            communities, _timings, _counters = \
                replay.result(timeout=POLL_SECONDS)
            assert len(communities) == 1
        finally:
            pool.shutdown()

    def test_unleased_pool_never_times_out(self, snapshot_path):
        pool = WorkerPool(snapshot_path, workers=1,
                          lease_seconds=None).start()
        try:
            assert pool._expired_workers() == []
            spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
            communities, _, _ = pool.request("query", spec,
                                             timeout=POLL_SECONDS)
            assert len(communities) == 1
            assert pool.timeouts == 0
        finally:
            pool.shutdown()

    def test_nonpositive_lease_rejected(self, snapshot_path):
        with pytest.raises(ValueError):
            WorkerPool(snapshot_path, lease_seconds=0.0)

    def test_queue_wait_does_not_count_against_the_lease(
            self, snapshot_path, monkeypatch):
        """Three back-to-back 1 s queries on one worker, 1.8 s lease:
        each gets a full lease from the moment it *starts*, so the
        last one — which waits ~2 s in the queue — must not be
        declared hung while the worker makes normal progress."""
        monkeypatch.setenv("REPRO_FAILPOINTS",
                           "worker.exec=always:sleep(1.0)")
        pool = WorkerPool(snapshot_path, workers=1,
                          lease_seconds=1.8).start()
        try:
            monkeypatch.delenv("REPRO_FAILPOINTS")
            spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
            futures = [pool.submit("query", spec, worker_id=0)
                       for _ in range(3)]
            for future in futures:
                communities, _timings, _counters = \
                    future.result(timeout=POLL_SECONDS)
                assert len(communities) == 1
            assert pool.timeouts == 0
            assert pool.respawns == 0
        finally:
            pool.shutdown()

    def test_respawn_hung_at_startup_is_still_bounded(
            self, snapshot_path, monkeypatch):
        """A replacement worker that wedges while loading its
        snapshot never emits ``started`` markers; requests queued to
        it must still fail within ~one lease (via dispatch age), not
        hang forever."""
        pool = WorkerPool(snapshot_path, workers=1,
                          lease_seconds=1.0).start()
        try:
            victim = pool.pids()[0]
            monkeypatch.setenv("REPRO_FAILPOINTS",
                               "worker.start=always:sleep(60)")
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: pool.pids().get(0) not in (None, victim))
            spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
            future = pool.submit("query", spec, worker_id=0)
            with pytest.raises(WorkerTimeoutError) as excinfo:
                future.result(timeout=POLL_SECONDS)
            assert "lease" in str(excinfo.value)
            assert pool.timeouts >= 1
            monkeypatch.delenv("REPRO_FAILPOINTS")
        finally:
            pool.shutdown()


class TestRouterResilience:
    def test_router_survives_garbage_on_the_result_queue(
            self, snapshot_path):
        """A worker SIGKILLed mid-put can leave a torn message in the
        shared result queue; the router must drop it and keep
        resolving futures instead of dying (which would hang every
        later request)."""
        pool = WorkerPool(snapshot_path, workers=1).start()
        try:
            pool._result_queue.put(("garbage",))       # wrong arity
            pool._result_queue.put(
                ("rid", 0, "ok"))                      # also torn
            spec = QuerySpec.comm_k(list(FIG4_QUERY), 1, FIG4_RMAX)
            communities, _timings, _counters = pool.request(
                "query", spec, timeout=POLL_SECONDS)
            assert len(communities) == 1
            assert pool._router.is_alive()
        finally:
            pool.shutdown()


class TestServiceMapping:
    def test_worker_timeout_maps_to_503_with_retry_after(
            self, snapshot_path):
        """The HTTP boundary renders a watchdog kill as transient
        unavailability (503), not an internal error (500)."""
        engine = QueryEngine.from_snapshot(snapshot_path)

        def hang(spec, context=None):
            raise WorkerTimeoutError(
                "worker 0 exceeded its 1s request lease and was "
                "killed")

        engine.execute = hang
        with CommunityService(engine, port=0) as service:
            status, _template, body, _ctype = service.handle(
                "POST", "/query",
                json.dumps({"keywords": list(FIG4_QUERY),
                            "rmax": FIG4_RMAX, "k": 1}
                           ).encode("utf-8"))
            assert status == 503
            payload = json.loads(body)
            assert payload["status"] == 503
            assert "lease" in payload["error"]
