"""Helpers shared by the chaos test modules (imported by name —
the tests directories are not packages)."""

import time

from repro.datasets.paper_example import FIG4_RMAX, figure4_graph
from repro.snapshot import SnapshotStore
from repro.text.inverted_index import CommunityIndex

#: Longest we poll for an asynchronous pool event (kill, respawn).
POLL_SECONDS = 15.0


def publish_fig4(store_root, radius=FIG4_RMAX):
    """Build fig4 at ``radius``, publish it, return the snapshot."""
    dbg = figure4_graph()
    index = CommunityIndex.build(dbg, radius)
    return SnapshotStore(store_root).publish(
        dbg, index,
        provenance={"dataset": "fig4", "index_radius": radius})


def wait_until(predicate, timeout=POLL_SECONDS, interval=0.05):
    """Poll ``predicate`` until true (returns False on timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
