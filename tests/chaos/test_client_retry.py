"""Client retries: backoff policy, Retry-After, error enrichment.

A real server is driven over a real socket (retries only make sense
across the wire). Transient failures are injected at the
``service.request`` failpoint so the Nth attempt deterministically
fails and the N+1st succeeds — no load generation, no racing.
"""

import pytest

from repro import faults
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine
from repro.service import (
    BadRequest,
    CommunityService,
    Overloaded,
    ServiceClient,
    ServiceUnreachable,
)
from repro.snapshot import SnapshotStore


@pytest.fixture()
def live_service(fig4_store):
    engine = QueryEngine.from_snapshot(
        SnapshotStore(fig4_store).resolve())
    with CommunityService(engine, port=0).start() as service:
        yield service


class TestRetryLoop:
    def test_retry_succeeds_after_transient_429(self, live_service):
        faults.activate("service.request", "once:raise(Overloaded)")
        client = ServiceClient(live_service.url, retries=2,
                               backoff_base=0.01, retry_seed=7)
        result = client.query(list(FIG4_QUERY), FIG4_RMAX, k=1)
        assert result["count"] == 1
        assert client.retries_performed == 1

    def test_retry_succeeds_after_transient_503(self, live_service):
        faults.activate("service.request",
                        "once:raise(DeadlineExceeded)")
        client = ServiceClient(live_service.url, retries=1,
                               backoff_base=0.01, retry_seed=7)
        assert client.health()["status"] == "ok"
        assert client.retries_performed == 1

    def test_retries_exhausted_raises_the_last_error(self,
                                                     live_service):
        faults.activate("service.request", "always:raise(Overloaded)")
        client = ServiceClient(live_service.url, retries=2,
                               backoff_base=0.01, retry_seed=7)
        with pytest.raises(Overloaded):
            client.health()
        assert client.retries_performed == 2

    def test_default_client_does_not_retry(self, live_service):
        faults.activate("service.request", "once:raise(Overloaded)")
        client = ServiceClient(live_service.url)
        with pytest.raises(Overloaded):
            client.health()
        assert client.retries_performed == 0
        client.health()                     # fault spent; clean now

    def test_non_retryable_errors_fail_immediately(self,
                                                   live_service):
        client = ServiceClient(live_service.url, retries=5,
                               backoff_base=0.01, retry_seed=7)
        with pytest.raises(BadRequest):
            client.query(["nosuchkeyword"], FIG4_RMAX, k=1)
        assert client.retries_performed == 0

    def test_connection_errors_are_retryable(self):
        # Nothing listens on this port; every attempt fails at the
        # socket layer and the client must retry, then surface
        # ServiceUnreachable (status 503, no Retry-After).
        client = ServiceClient("http://127.0.0.1:9",
                               timeout=0.5, retries=2,
                               backoff_base=0.01, retry_seed=7)
        with pytest.raises(ServiceUnreachable) as excinfo:
            client.health()
        assert client.retries_performed == 2
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after is None

    def test_connection_errors_never_replay_non_idempotent_posts(
            self):
        """A torn connection may hide a POST the server already
        executed — replaying session creation would leak
        max_sessions slots, so non-idempotent POSTs must fail fast
        even with retries enabled."""
        client = ServiceClient("http://127.0.0.1:9",
                               timeout=0.5, retries=3,
                               backoff_base=0.01, retry_seed=7)
        for path in ("/sessions", "/admin/reload"):
            with pytest.raises(ServiceUnreachable):
                client.request("POST", path, {})
        assert client.retries_performed == 0

    def test_stateless_post_reads_opt_into_connection_retries(self):
        """``/query`` and ``/batch`` are safe to re-send; the
        idempotent flag they pass re-enables connection-error
        retries for them."""
        client = ServiceClient("http://127.0.0.1:9",
                               timeout=0.5, retries=2,
                               backoff_base=0.01, retry_seed=7)
        with pytest.raises(ServiceUnreachable):
            client.query(["kate"], 6.0, k=1)
        assert client.retries_performed == 2

    def test_http_503_responses_retry_even_on_posts(self,
                                                    live_service):
        """A definitive 429/503 *response* proves the server rejected
        the request, so even a non-idempotent POST retries on it."""
        faults.activate("service.request", "once:raise(Overloaded)")
        client = ServiceClient(live_service.url, retries=2,
                               backoff_base=0.01, retry_seed=7)
        opened = client.request(
            "POST", "/sessions",
            {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX})
        assert "session" in opened
        assert client.retries_performed == 1
        client.request("DELETE", f"/sessions/{opened['session']}")


class TestErrorEnrichment:
    def test_raised_errors_carry_status_and_retry_after(
            self, live_service):
        """Satellite: 429/503 responses arrive with the server's
        Retry-After hint attached to the exception object."""
        faults.activate("service.request", "once:raise(Overloaded)")
        client = ServiceClient(live_service.url)
        with pytest.raises(Overloaded) as excinfo:
            client.health()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 1.0

    def test_4xx_errors_carry_status_but_no_retry_after(
            self, live_service):
        client = ServiceClient(live_service.url)
        with pytest.raises(BadRequest) as excinfo:
            client.query(["nosuchkeyword"], FIG4_RMAX, k=1)
        assert excinfo.value.status == 400
        assert excinfo.value.retry_after is None


class TestBackoffPolicy:
    def test_backoff_is_deterministic_given_a_seed(self):
        a = ServiceClient("http://x", retry_seed=42)
        b = ServiceClient("http://x", retry_seed=42)
        assert [a._backoff(i, None) for i in range(6)] \
            == [b._backoff(i, None) for i in range(6)]

    def test_backoff_grows_and_caps(self):
        client = ServiceClient("http://x", backoff_base=0.1,
                               backoff_cap=0.4, retry_seed=1)
        for attempt in range(8):
            delay = client._backoff(attempt, None)
            assert 0.0 <= delay <= min(0.4, 0.1 * 2 ** attempt)

    def test_retry_after_overrides_backoff(self):
        client = ServiceClient("http://x", backoff_base=100.0,
                               retry_seed=1)
        assert client._backoff(0, 0.25) == 0.25
        assert client._backoff(0, -3.0) == 0.0
