"""Graceful drain semantics, socketless.

The in-flight job is gated on a ``threading.Event`` — the test
controls exactly when it finishes, so drain outcomes are asserted
deterministically instead of raced against wall clock.
"""

import threading

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine
from repro.service import (
    CommunityService,
    Overloaded,
    ShuttingDown,
)
from repro.service.admission import AdmissionController
from repro.snapshot import SnapshotStore


class TestAdmissionDrain:
    def test_drain_waits_for_in_flight_work(self):
        controller = AdmissionController(workers=1, queue_depth=4)
        release = threading.Event()
        started = threading.Event()

        def job(_remaining):
            started.set()
            release.wait(timeout=30.0)
            return "done"

        future = controller.submit(job)
        assert started.wait(timeout=5.0)

        # Work still running: a bounded drain reports failure ...
        assert controller.drain(timeout=0.2) is False
        # ... and new work is shed with 503 ShuttingDown (not 429 —
        # the queue is not full, the service is going away).
        with pytest.raises(ShuttingDown):
            controller.submit(lambda _r: None)

        # Release the job: the next drain sees an idle controller and
        # the admitted work was never dropped.
        release.set()
        assert future.result(timeout=5.0) == "done"
        assert controller.drain(timeout=5.0) is True
        controller.shutdown()

    def test_drain_of_idle_controller_is_immediate(self):
        controller = AdmissionController(workers=1, queue_depth=4)
        assert controller.drain(timeout=0.0) is True
        controller.shutdown()

    def test_shutdown_without_drain_still_sheds_with_429(self):
        # The historic contract: a hard-shutdown controller sheds
        # Overloaded, and queued-but-unstarted jobs fail the same way.
        controller = AdmissionController(workers=1, queue_depth=4)
        controller.shutdown()
        with pytest.raises(Overloaded):
            controller.submit(lambda _r: None)


class TestServiceDrain:
    def test_shutdown_reports_clean_drain(self, fig4_store):
        engine = QueryEngine.from_snapshot(
            SnapshotStore(fig4_store).resolve())
        service = CommunityService(engine, port=0,
                                   drain_seconds=2.0)
        service.shutdown()
        assert service.drained_clean is True

    def test_shutdown_reports_dirty_drain_on_stuck_work(
            self, fig4_store):
        engine = QueryEngine.from_snapshot(
            SnapshotStore(fig4_store).resolve())
        service = CommunityService(engine, port=0)
        release = threading.Event()
        service.admission.submit(
            lambda _r: release.wait(timeout=30.0))
        try:
            service.shutdown(drain_seconds=0.2)
            assert service.drained_clean is False
        finally:
            release.set()

    def test_requests_during_drain_get_503(self, fig4_store):
        engine = QueryEngine.from_snapshot(
            SnapshotStore(fig4_store).resolve())
        with CommunityService(engine, port=0) as service:
            release = threading.Event()
            service.admission.submit(
                lambda _r: release.wait(timeout=30.0))
            try:
                # A zero-budget drain flips the draining flag and
                # returns immediately (work is still running).
                assert service.admission.drain(timeout=0.0) is False
                import json
                status, _t, body, _c = service.handle(
                    "POST", "/query",
                    json.dumps({"keywords": list(FIG4_QUERY),
                                "rmax": FIG4_RMAX, "k": 1}
                               ).encode("utf-8"))
                assert status == 503
                assert "drain" in json.loads(body)["error"]
            finally:
                release.set()
