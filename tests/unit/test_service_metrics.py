"""Unit tests for Prometheus exposition
(:mod:`repro.service.metrics`) and the audited
:meth:`CacheStats.as_dict` it consumes."""

import pytest

from repro.engine import QueryContext
from repro.engine.cache import CacheStats
from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    escape_label,
    prefixed,
    split_rates,
)


class TestLatencyHistogram:
    def test_observations_land_in_buckets(self):
        h = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(5.555)
        assert h.cumulative() == [(0.01, 1), (0.1, 2), (1.0, 3),
                                  (float("inf"), 4)]

    def test_cumulative_counts_are_monotonic(self):
        h = LatencyHistogram()
        for value in (0.0001, 0.002, 0.03, 0.4, 20.0):
            h.observe(value)
        counts = [count for _, count in h.cumulative()]
        assert counts == sorted(counts)
        assert counts[-1] == 5


class TestServiceMetrics:
    def test_contexts_aggregate_across_queries(self):
        metrics = ServiceMetrics()
        for _ in range(3):
            ctx = QueryContext()
            ctx.add_time("project", 0.5)
            ctx.count("communities", 2)
            metrics.observe_context(ctx)
        text = metrics.render()
        assert 'repro_stage_seconds_total{stage="project"} 1.5' in text
        assert 'repro_query_events_total{event="communities"} 6' \
            in text

    def test_request_histogram_and_counters(self):
        metrics = ServiceMetrics()
        metrics.observe_request("/query", 200, 0.02)
        metrics.observe_request("/query", 200, 0.2)
        metrics.observe_request("/query", 429, 0.0001)
        text = metrics.render()
        assert 'repro_requests_total{path="/query",status="200"} 2' \
            in text
        assert 'repro_requests_total{path="/query",status="429"} 1' \
            in text
        assert 'repro_request_seconds_count{path="/query"} 3' in text
        assert 'le="+Inf"} 3' in text

    def test_counters_and_gauges_passed_through(self):
        metrics = ServiceMetrics()
        text = metrics.render(
            counters={"repro_cache_hits_total": 4.0},
            gauges={"repro_queue_depth": 2.0})
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 4" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text

    def test_label_escaping(self):
        assert escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_render_ends_with_newline(self):
        assert ServiceMetrics().render().endswith("\n")


class TestHelpers:
    def test_prefixed_rekeys(self):
        flat = prefixed({"cache_hits": 1.0},
                        prefix="repro_projection_", suffix="_total")
        assert flat == {"repro_projection_cache_hits_total": 1.0}

    def test_split_rates_partitions(self):
        counters, gauges = split_rates(
            {"cache_hits": 2.0, "cache_hit_rate": 0.5},
            ("cache_hit_rate",))
        assert counters == {"cache_hits": 2.0}
        assert gauges == {"cache_hit_rate": 0.5}


class TestCacheStatsAudit:
    def test_as_dict_exports_every_tracked_counter(self):
        """The satellite audit: nothing CacheStats tracks may be
        missing from its exported view — the metrics endpoint relies
        on as_dict being complete."""
        stats = CacheStats(hits=3, misses=1, evictions=2,
                           invalidations=4, stale_drops=5)
        flat = stats.as_dict()
        assert flat == {
            "cache_hits": 3.0,
            "cache_misses": 1.0,
            "cache_evictions": 2.0,
            "cache_invalidations": 4.0,
            "cache_stale_drops": 5.0,
            "cache_lookups": 4.0,
            "cache_hit_rate": 0.75,
        }

    def test_as_dict_mirrors_every_data_field(self):
        """Structural guard: every dataclass field appears (prefixed)
        in as_dict, so adding a counter without exporting it fails."""
        from dataclasses import fields
        stats = CacheStats()
        flat = stats.as_dict()
        for field in fields(CacheStats):
            assert f"cache_{field.name}" in flat
        assert "cache_lookups" in flat        # derived properties too
        assert "cache_hit_rate" in flat

    def test_hit_rate_zero_when_untouched(self):
        assert CacheStats().as_dict()["cache_hit_rate"] == 0.0
