"""Unit tests for the zero-copy mmap snapshot path.

The mmap mode serves a snapshot out of read-only array views over
memory-mapped section files, so N workers share one physical copy of
the index. These tests pin down the mode surface (``copy`` / ``mmap``
/ ``auto``), the gzip fallback, view immutability, the lazy metadata
decode, the engine/CLI plumbing, and the codec's single-pass posting
validation (NaN / negative weights, out-of-range nodes).
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError, SnapshotFormatError
from repro.graph.database_graph import LazyDatabaseGraph
from repro.snapshot import (
    SNAPSHOT_MODES,
    load_snapshot,
    read_manifest,
    snapshot_is_mappable,
    write_snapshot,
)
from repro.snapshot.codec import index_from_payload, index_payload
from repro.text.inverted_index import (
    ArrayEdgeInvertedIndex,
    ArrayNodeInvertedIndex,
    CommunityIndex,
)


@pytest.fixture()
def fig4_index(fig4):
    return CommunityIndex.build(fig4, FIG4_RMAX)


@pytest.fixture()
def snap_dir(fig4, fig4_index, tmp_path):
    """An uncompressed (mmap-able) fig4 snapshot directory."""
    write_snapshot(tmp_path / "s", fig4, fig4_index)
    return tmp_path / "s"


@pytest.fixture()
def gzip_snap_dir(fig4, fig4_index, tmp_path):
    """A gzip-compressed (copy-only) fig4 snapshot directory."""
    write_snapshot(tmp_path / "z", fig4, fig4_index, compress=True)
    return tmp_path / "z"


class TestModes:
    def test_mode_constants(self):
        assert SNAPSHOT_MODES == ("copy", "mmap", "auto")

    def test_unknown_mode_rejected(self, snap_dir):
        with pytest.raises(ValueError, match="snapshot mode"):
            load_snapshot(snap_dir, mode="turbo")

    def test_mode_recorded_on_snapshot(self, snap_dir):
        assert load_snapshot(snap_dir, mode="copy").mode == "copy"
        mapped = load_snapshot(snap_dir, mode="mmap")
        assert mapped.mode == "mmap"
        assert "mmap" in repr(mapped)

    def test_auto_resolves_against_the_artifact(self, snap_dir,
                                                gzip_snap_dir):
        assert load_snapshot(snap_dir, mode="auto").mode == "mmap"
        assert load_snapshot(gzip_snap_dir,
                             mode="auto").mode == "copy"

    def test_mmap_on_gzip_is_a_typed_format_error(self,
                                                  gzip_snap_dir):
        with pytest.raises(SnapshotFormatError, match="gzip"):
            load_snapshot(gzip_snap_dir, mode="mmap")

    def test_mappability_predicate(self, snap_dir, gzip_snap_dir):
        assert snapshot_is_mappable(read_manifest(snap_dir))
        assert not snapshot_is_mappable(read_manifest(gzip_snap_dir))

    def test_mmap_round_trips_content(self, fig4, fig4_index,
                                      snap_dir):
        loaded = load_snapshot(snap_dir, mode="mmap")
        assert loaded.dbg.n == fig4.n and loaded.dbg.m == fig4.m
        assert list(loaded.dbg.graph.edges()) \
            == list(fig4.graph.edges())
        for u in range(fig4.n):
            assert loaded.dbg.keywords_of(u) == fig4.keywords_of(u)
            assert loaded.dbg.label_of(u) == fig4.label_of(u)
            assert loaded.dbg.provenance_of(u) \
                == fig4.provenance_of(u)
        index = loaded.index
        assert index.radius == fig4_index.radius
        assert index.node_index.keywords() \
            == fig4_index.node_index.keywords()
        for kw in fig4_index.node_index.keywords():
            assert index.node_index.nodes(kw) \
                == fig4_index.node_index.nodes(kw)
        for kw in fig4_index.edge_index.keywords():
            assert index.edge_index.edges(kw) \
                == fig4_index.edge_index.edges(kw)

    def test_mmap_uses_array_backed_classes(self, snap_dir):
        loaded = load_snapshot(snap_dir, mode="mmap")
        assert isinstance(loaded.dbg, LazyDatabaseGraph)
        assert isinstance(loaded.index.node_index,
                          ArrayNodeInvertedIndex)
        assert isinstance(loaded.index.edge_index,
                          ArrayEdgeInvertedIndex)


class TestReadOnlyViews:
    def test_graph_views_reject_mutation(self, snap_dir):
        graph = load_snapshot(snap_dir, mode="mmap").dbg.graph
        for arr in (graph.forward.indptr, graph.forward.targets,
                    graph.forward.weights):
            arr = np.asarray(arr)
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 1

    def test_postings_decode_to_plain_python(self, snap_dir):
        index = load_snapshot(snap_dir, mode="mmap").index
        for kw in index.node_index.keywords():
            nodes = index.node_index.nodes(kw)
            assert all(type(u) is int for u in nodes)
        for kw in index.edge_index.keywords():
            for u, v, w in index.edge_index.edges(kw):
                assert type(u) is int and type(v) is int \
                    and type(w) is float
        # ... so answers built from them are JSON-serializable.
        json.dumps({"n": index.node_index.nodes(kw),
                    "e": index.edge_index.edges(kw)})

    def test_node_metadata_parse_is_deferred(self, snap_dir):
        dbg = load_snapshot(snap_dir, mode="mmap").dbg
        assert dbg._payload is None        # spawn paid no JSON parse
        dbg.label_of(0)
        assert dbg._payload is not None    # first access paid it once


class TestQueryEquivalence:
    def test_comm_all_identical_across_modes(self, snap_dir):
        spec = QuerySpec(tuple(FIG4_QUERY), FIG4_RMAX, mode="all")
        copied = QueryEngine.from_snapshot(snap_dir, mode="copy")
        mapped = QueryEngine.from_snapshot(snap_dir, mode="mmap")
        key = [(c.core, c.cost, c.nodes, c.edges, c.centers)
               for c in copied.run_all(spec)]
        assert key == [(c.core, c.cost, c.nodes, c.edges, c.centers)
                       for c in mapped.run_all(spec)]

    def test_pdk_stream_identical_across_modes(self, snap_dir):
        copied = QueryEngine.from_snapshot(snap_dir, mode="copy")
        mapped = QueryEngine.from_snapshot(snap_dir, mode="mmap")
        a = copied.top_k_stream(list(FIG4_QUERY), FIG4_RMAX).take(3)
        b = mapped.top_k_stream(list(FIG4_QUERY), FIG4_RMAX).take(3)
        assert [(c.core, c.cost, c.nodes) for c in a] \
            == [(c.core, c.cost, c.nodes) for c in b]


class TestEnginePlumbing:
    def test_engine_reports_resolved_mode(self, snap_dir):
        assert QueryEngine.from_snapshot(
            snap_dir, mode="mmap").snapshot_mode == "mmap"
        assert QueryEngine.from_snapshot(
            snap_dir, mode="copy").snapshot_mode == "copy"

    def test_auto_request_reports_resolution(self, snap_dir,
                                             gzip_snap_dir):
        assert QueryEngine.from_snapshot(
            snap_dir, mode="auto").snapshot_mode == "mmap"
        assert QueryEngine.from_snapshot(
            gzip_snap_dir, mode="auto").snapshot_mode == "copy"

    def test_engine_adopts_snapshot_object_mode(self, snap_dir):
        snapshot = load_snapshot(snap_dir, mode="mmap")
        engine = QueryEngine.from_snapshot(snapshot)
        assert engine.snapshot_mode == "mmap"

    def test_reload_preserves_the_mode_request(self, fig4,
                                               fig4_index, snap_dir,
                                               tmp_path):
        engine = QueryEngine.from_snapshot(snap_dir, mode="mmap")
        write_snapshot(tmp_path / "next", fig4,
                       CommunityIndex.build(fig4, FIG4_RMAX + 1))
        engine.load_snapshot(tmp_path / "next")
        assert engine.snapshot_mode == "mmap"

    def test_index_mutation_clears_the_mode(self, snap_dir):
        engine = QueryEngine.from_snapshot(snap_dir, mode="mmap")
        engine.build_index(radius=FIG4_RMAX)
        assert engine.snapshot_mode is None


class TestCodecValidation:
    """Satellite: single-pass posting validation in the codec."""

    def _payload(self, fig4_index):
        return json.loads(json.dumps(index_payload(fig4_index)))

    def test_round_trip_is_clean(self, fig4, fig4_index):
        index_from_payload(self._payload(fig4_index), fig4)

    def test_nan_edge_weight_rejected(self, fig4, fig4_index):
        payload = self._payload(fig4_index)
        kw = next(k for k, v in payload["edge_postings"].items()
                  if v)
        payload["edge_postings"][kw][0][2] = float("nan")
        with pytest.raises(QueryError, match="NaN"):
            index_from_payload(payload, fig4)

    def test_negative_edge_weight_rejected(self, fig4, fig4_index):
        payload = self._payload(fig4_index)
        kw = next(k for k, v in payload["edge_postings"].items()
                  if v)
        payload["edge_postings"][kw][0][2] = -1.0
        with pytest.raises(QueryError, match="negative"):
            index_from_payload(payload, fig4)

    def test_out_of_range_node_posting_rejected(self, fig4,
                                                fig4_index):
        payload = self._payload(fig4_index)
        kw = next(k for k, v in payload["node_postings"].items()
                  if v)
        payload["node_postings"][kw][0] = fig4.n
        with pytest.raises(QueryError, match="outside"):
            index_from_payload(payload, fig4)

    def test_negative_node_posting_rejected(self, fig4, fig4_index):
        payload = self._payload(fig4_index)
        kw = next(k for k, v in payload["node_postings"].items()
                  if v)
        payload["node_postings"][kw][0] = -1
        with pytest.raises(QueryError, match="outside"):
            index_from_payload(payload, fig4)


class TestInspectCli:
    def test_json_reports_mappability(self, snap_dir, gzip_snap_dir,
                                      capsys):
        assert main(["snapshot", "inspect", str(snap_dir),
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["mmap"] is True
        assert main(["snapshot", "inspect", str(gzip_snap_dir),
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["mmap"] is False

    def test_text_reports_bytes_and_mappability(self, snap_dir,
                                                capsys):
        assert main(["snapshot", "inspect", str(snap_dir)]) == 0
        out = capsys.readouterr().out
        assert "mmap       yes" in out
        assert "bytes shareable across workers" in out

    def test_text_explains_gzip_fallback(self, gzip_snap_dir,
                                         capsys):
        assert main(["snapshot", "inspect",
                     str(gzip_snap_dir)]) == 0
        out = capsys.readouterr().out
        assert "mmap       no" in out
        assert "--snapshot-mode" in out
