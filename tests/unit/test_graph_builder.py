"""Unit tests for database graph materialization."""

import math

import pytest

from repro.rdb.database import Database
from repro.rdb.graph_builder import (
    banks_weight,
    build_database_graph,
    node_lookup,
)
from repro.rdb.schema import Column, ForeignKey, TableSchema


@pytest.fixture()
def mini_db():
    db = Database("mini")
    db.create_table(TableSchema(
        "Author", [Column("Aid", int), Column("Name", str)], "Aid",
        text_columns=["Name"]))
    db.create_table(TableSchema(
        "Paper", [Column("Pid", int), Column("Title", str)], "Pid",
        text_columns=["Title"]))
    db.create_table(TableSchema(
        "Write", [Column("Aid", int), Column("Pid", int)],
        ("Aid", "Pid"),
        [ForeignKey("Aid", "Author"), ForeignKey("Pid", "Paper")]))
    db.insert("Author", {"Aid": 1, "Name": "John Smith"})
    db.insert("Paper", {"Pid": 10, "Title": "graph search"})
    db.insert("Write", {"Aid": 1, "Pid": 10})
    return db


class TestBanksWeight:
    def test_formula(self):
        assert banks_weight(0) == 0.0
        assert banks_weight(1) == 1.0
        assert banks_weight(3) == 2.0
        assert abs(banks_weight(2) - math.log2(3)) < 1e-12


class TestBuild:
    def test_node_per_tuple(self, mini_db):
        dbg = build_database_graph(mini_db)
        assert dbg.n == 3

    def test_bidirected_edges(self, mini_db):
        dbg = build_database_graph(mini_db)
        # write node has 2 references -> 4 directed edges
        assert dbg.m == 4
        for u, v, _ in dbg.graph.edges():
            assert dbg.graph.has_edge(v, u)

    def test_unidirected_option(self, mini_db):
        dbg = build_database_graph(mini_db, bidirected=False)
        assert dbg.m == 2

    def test_weights_follow_banks_formula(self, mini_db):
        dbg = build_database_graph(mini_db)
        for u, v, w in dbg.graph.edges():
            assert w == banks_weight(dbg.graph.in_degree(v))

    def test_keywords_from_text_columns(self, mini_db):
        dbg = build_database_graph(mini_db)
        lookup = node_lookup(mini_db, dbg)
        author = lookup[("Author", 1)]
        paper = lookup[("Paper", 10)]
        write = lookup[("Write", (1, 10))]
        assert dbg.keywords_of(author) == frozenset({"john", "smith"})
        assert dbg.keywords_of(paper) == frozenset({"graph", "search"})
        assert dbg.keywords_of(write) == frozenset()

    def test_labels_default_and_custom(self, mini_db):
        plain = build_database_graph(mini_db)
        lookup = node_lookup(mini_db, plain)
        assert plain.label_of(lookup[("Author", 1)]) == "Author:1"
        named = build_database_graph(
            mini_db, label_columns={"Author": "Name"})
        lookup = node_lookup(mini_db, named)
        assert named.label_of(lookup[("Author", 1)]) == "John Smith"

    def test_provenance_round_trip(self, mini_db):
        dbg = build_database_graph(mini_db)
        lookup = node_lookup(mini_db, dbg)
        for key, node in lookup.items():
            assert dbg.provenance_of(node) == key

    def test_custom_tokenizer(self, mini_db):
        dbg = build_database_graph(
            mini_db, tokenizer=lambda text: {"fixed"})
        lookup = node_lookup(mini_db, dbg)
        assert dbg.keywords_of(lookup[("Paper", 10)]) \
            == frozenset({"fixed"})

    def test_null_fk_produces_no_edge(self):
        db = Database()
        db.create_table(TableSchema("P", [Column("id", int)], "id"))
        db.create_table(TableSchema(
            "C", [Column("id", int), Column("p", int, nullable=True)],
            "id", [ForeignKey("p", "P")]))
        db.insert("C", {"id": 1, "p": None})
        dbg = build_database_graph(db)
        assert dbg.n == 1 and dbg.m == 0
