"""Worker-pool lifecycle, ``/batch`` semantics, and pool metrics.

Everything here drives real worker *processes* over a published fig4
snapshot, but stays socketless: HTTP-level assertions go through
:meth:`~repro.service.server.CommunityService.handle` directly. The
acceptance properties covered:

* pool lifecycle — start (ping-ready), round-robined queries, a
  killed worker fails its pending futures with
  :class:`~repro.exceptions.WorkerCrashedError` and is respawned,
  clean shutdown;
* answers through the pool are exactly the local engine's answers —
  ``POST /query`` envelopes are byte-identical (modulo wall-clock
  fields) with and without ``--workers``;
* ``POST /batch`` preserves request order and validates its body;
* ``/metrics`` exposes one ``repro_worker_info`` row per worker and
  ``POST /admin/reload`` moves every row to the new snapshot id;
* the :class:`~repro.engine.cache.ProjectionCache` counters stay
  exact under thread contention (they increment under the cache
  lock).
"""

import json
import threading
import time
from concurrent.futures import Future

import pytest

from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.engine import QueryEngine, QuerySpec
from repro.engine.cache import ProjectionCache
from repro.engine.context import QueryContext
from repro.exceptions import QueryError, WorkerCrashedError, WorkerError
from repro.parallel import ParallelQueryEngine, WorkerPool
from repro.service import CommunityService
from repro.service.serialize import dumps
from repro.snapshot import SnapshotStore
from repro.text.inverted_index import CommunityIndex

#: Longest we poll for an asynchronous pool event (respawn).
POLL_SECONDS = 15.0


def publish_fig4(store_root, radius=FIG4_RMAX):
    """Build fig4 at ``radius``, publish it, return the snapshot."""
    dbg = figure4_graph()
    index = CommunityIndex.build(dbg, radius)
    return SnapshotStore(store_root).publish(
        dbg, index,
        provenance={"dataset": "fig4", "index_radius": radius})


def wait_until(predicate, timeout=POLL_SECONDS, interval=0.05):
    """Poll ``predicate`` until true (returns False on timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("pool-snapshots")
    publish_fig4(root)
    return root


@pytest.fixture(scope="module")
def parallel_engine(store_root):
    with ParallelQueryEngine(store_root, workers=2) as engine:
        yield engine


@pytest.fixture(scope="module")
def local_engine(store_root):
    return QueryEngine.from_snapshot(
        SnapshotStore(store_root).resolve())


class TestWorkerPoolLifecycle:
    def test_start_spawns_live_distinct_processes(self,
                                                  parallel_engine):
        pool = parallel_engine.pool
        assert pool.alive == 2
        pids = pool.pids()
        assert sorted(pids) == [0, 1]
        assert len(set(pids.values())) == 2

    def test_ping_round_trips_worker_identity(self, parallel_engine):
        pool = parallel_engine.pool
        answer = pool.request("ping", None, timeout=30.0)
        assert answer["pid"] in pool.pids().values()

    def test_stats_report_snapshot_per_worker(self, parallel_engine,
                                              store_root):
        snapshot_id = SnapshotStore(store_root).latest_id()
        stats = parallel_engine.worker_stats()
        assert [s["worker"] for s in stats] == [0, 1]
        for s in stats:
            assert s["alive"] is True
            assert s["snapshot_id"] == snapshot_id

    def test_worker_errors_propagate_as_worker_error(
            self, parallel_engine):
        with pytest.raises(WorkerError):
            parallel_engine.pool.request("no-such-op", None,
                                         timeout=30.0)

    def test_crash_respawns_and_keeps_serving(self, parallel_engine):
        pool = parallel_engine.pool
        respawns_before = pool.respawns
        victim = pool._handles[0].process
        victim_pid = victim.pid
        victim.terminate()
        assert wait_until(
            lambda: pool.alive == 2
            and pool.respawns > respawns_before)
        assert pool.pids()[0] != victim_pid
        # The pool keeps answering queries after the crash.
        spec = QuerySpec.comm_k(list(FIG4_QUERY), 2, FIG4_RMAX)
        assert len(parallel_engine.top_k(spec)) == 2

    def test_dead_worker_fails_its_pending_futures(self,
                                                   parallel_engine):
        pool = parallel_engine.pool
        # Register a pending request against slot 1, then kill the
        # process: the monitor must fail the future (no hung caller)
        # before spawning the replacement.
        future: Future = Future()
        with pool._lock:
            pool._pending["test-doomed"] = (future, 1)
        pool._handles[1].process.terminate()
        with pytest.raises(WorkerCrashedError):
            future.result(timeout=POLL_SECONDS)
        assert wait_until(lambda: pool.alive == 2)

    def test_shutdown_is_clean_and_idempotent(self, store_root):
        pool = WorkerPool(SnapshotStore(store_root).resolve(),
                          workers=1).start()
        assert pool.alive == 1
        pool.shutdown()
        assert pool.alive == 0
        pool.shutdown()             # second call is a no-op
        with pytest.raises(WorkerError):
            WorkerPool(store_root, workers=1).submit("ping", None)

    def test_zero_workers_rejected(self, store_root):
        with pytest.raises(ValueError):
            WorkerPool(store_root, workers=0)


class TestParallelEngineAnswers:
    def test_top_k_matches_local_engine(self, parallel_engine,
                                        local_engine):
        spec = QuerySpec.comm_k(list(FIG4_QUERY), 3, FIG4_RMAX)
        assert parallel_engine.top_k(spec) == local_engine.top_k(spec)

    def test_run_all_matches_local_engine(self, parallel_engine,
                                          local_engine):
        spec = QuerySpec.comm_all(list(FIG4_QUERY), FIG4_RMAX)
        assert parallel_engine.run_all(spec) \
            == local_engine.run_all(spec)

    def test_worker_stats_merge_into_context(self, parallel_engine):
        context = QueryContext()
        spec = QuerySpec.comm_all(list(FIG4_QUERY), FIG4_RMAX)
        parallel_engine.execute(spec, context)
        assert context.timings            # worker stages merged in
        assert context.counters["communities"] > 0

    def test_execute_batch_preserves_order(self, parallel_engine,
                                           local_engine):
        specs = [QuerySpec.comm_k(list(FIG4_QUERY), k, FIG4_RMAX)
                 for k in (1, 2, 3)]
        batched = parallel_engine.execute_batch(specs)
        assert [len(r) for r in batched] == [1, 2, 3]
        assert batched == [local_engine.top_k(s) for s in specs]

    def test_mode_validation_still_enforced(self, parallel_engine):
        all_spec = QuerySpec.comm_all(list(FIG4_QUERY), FIG4_RMAX)
        with pytest.raises(QueryError):
            parallel_engine.top_k(all_spec)

    def test_swap_fans_out_to_every_worker(self, tmp_path):
        store = tmp_path / "store"
        publish_fig4(store, radius=FIG4_RMAX)
        with ParallelQueryEngine(store, workers=2) as engine:
            old_id = engine.snapshot_id
            publish_fig4(store, radius=4.0)
            new_id = SnapshotStore(store).latest_id()
            assert new_id != old_id
            engine.load_snapshot(SnapshotStore(store).resolve())
            assert engine.snapshot_id == new_id
            assert all(s["snapshot_id"] == new_id
                       for s in engine.worker_stats())


def post(service, path, payload):
    """Drive one POST through the service router, no sockets."""
    status, _template, body, _ctype = service.handle(
        "POST", path, json.dumps(payload).encode("utf-8"))
    return status, json.loads(body)


@pytest.fixture(scope="module")
def pooled_service(parallel_engine):
    service = CommunityService(parallel_engine, port=0)
    yield service
    service.shutdown()


class TestBatchEndpoint:
    def test_results_arrive_in_request_order(self, pooled_service):
        queries = [{"keywords": list(FIG4_QUERY),
                    "rmax": FIG4_RMAX, "k": k} for k in (1, 2, 3)]
        status, response = post(pooled_service, "/batch",
                                {"queries": queries})
        assert status == 200
        assert response["queries"] == 3
        assert [r["count"] for r in response["results"]] == [1, 2, 3]
        assert response["elapsed_seconds"] >= 0.0

    def test_batch_entries_match_single_queries(self, pooled_service):
        query = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
                 "k": 2}
        _, single = post(pooled_service, "/query", query)
        _, batch = post(pooled_service, "/batch",
                        {"queries": [query]})
        assert batch["results"][0]["communities"] \
            == single["communities"]

    def test_empty_or_malformed_batch_is_400(self, pooled_service):
        for bad in ({}, {"queries": []}, {"queries": "nope"},
                    {"queries": [42]}):
            status, response = post(pooled_service, "/batch", bad)
            assert status == 400, response

    def test_bad_entry_fails_whole_batch_as_400(self,
                                                pooled_service):
        queries = [{"keywords": list(FIG4_QUERY),
                    "rmax": FIG4_RMAX},
                   {"keywords": ["nosuchkeyword"],
                    "rmax": FIG4_RMAX}]
        status, _ = post(pooled_service, "/batch",
                         {"queries": queries})
        assert status == 400

    def test_unknown_keyword_is_400_through_the_pool(
            self, pooled_service):
        status, response = post(
            pooled_service, "/query",
            {"keywords": ["nosuchkeyword"], "rmax": FIG4_RMAX})
        assert status == 400
        assert "nosuchkeyword" in response["error"]


class TestPoolTransparency:
    """`--workers N` must be invisible in the response bytes."""

    def test_query_envelope_byte_identical_to_local(
            self, parallel_engine, local_engine):
        payload = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
                   "labels": True}

        def canonical(engine):
            service = CommunityService(engine, port=0)
            try:
                status, response = post(service, "/query", payload)
            finally:
                service.shutdown()
            assert status == 200
            del response["elapsed_seconds"]     # wall-clock noise
            del response["stats"]               # timings differ
            return dumps(response)

        assert canonical(parallel_engine) == canonical(local_engine)

    def test_sessions_still_work_over_the_pool(self, pooled_service):
        status, opened = post(pooled_service, "/sessions",
                              {"keywords": list(FIG4_QUERY),
                               "rmax": FIG4_RMAX})
        assert status == 200
        status, page = post(
            pooled_service, f"/sessions/{opened['session']}/next",
            {"k": 2})
        assert status == 200
        assert page["returned"] == 2


class TestPoolMetrics:
    def test_one_info_row_per_worker(self, pooled_service,
                                     store_root):
        snapshot_id = SnapshotStore(store_root).latest_id()
        body = pooled_service.render_metrics()
        rows = [line for line in body.splitlines()
                if line.startswith("repro_worker_info{")]
        assert len(rows) == 2
        for worker_id in ("0", "1"):
            assert any(f'worker="{worker_id}"' in row
                       for row in rows)
        assert all(f'snapshot_id="{snapshot_id}"' in row
                   for row in rows)
        assert "repro_pool_workers 2" in body
        assert "repro_pool_workers_alive 2" in body
        assert "repro_pool_respawns_total" in body
        assert "repro_worker_dijkstra_memo_hits_total" in body

    def test_admin_reload_reaches_every_worker(self, tmp_path):
        store = tmp_path / "store"
        publish_fig4(store, radius=FIG4_RMAX)
        with ParallelQueryEngine(store, workers=2) as engine:
            service = CommunityService(engine, port=0,
                                       snapshot_source=store)
            try:
                publish_fig4(store, radius=4.0)
                new_id = SnapshotStore(store).latest_id()
                status, reloaded = post(service, "/admin/reload", {})
                assert status == 200
                assert reloaded["snapshot"] == new_id
                rows = [line for line in
                        service.render_metrics().splitlines()
                        if line.startswith("repro_worker_info{")]
                assert len(rows) == 2
                assert all(f'snapshot_id="{new_id}"' in row
                           for row in rows)
            finally:
                service.shutdown()


class TestCacheCounterExactness:
    """Satellite regression: stats increment under the cache lock."""

    def test_threaded_lookups_count_exactly(self):
        cache = ProjectionCache(capacity=8)
        threads, per_thread = 8, 500
        barrier = threading.Barrier(threads)

        def hammer(seed):
            barrier.wait()
            for i in range(per_thread):
                key = (frozenset({f"k{(seed + i) % 4}"}), 1.0)
                if cache.get(key, "g1") is None:
                    cache.put(key, "g1", object())

        workers = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stats = cache.stats
        assert stats.lookups == threads * per_thread
        assert stats.hits + stats.misses == stats.lookups
