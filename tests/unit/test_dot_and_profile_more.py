"""More analysis-module coverage: DOT structure, profile math."""

import re

import pytest

from repro.analysis.dot import community_to_dot

NODE_LINE = re.compile(r"^\s*n\d+ \[")
from repro.analysis.result_stats import (
    ResultProfile,
    overlap_matrix,
    profile_results,
)
from repro.core.community import Community


def community(core=(0, 1), cost=2.0, centers=(2,), pnodes=(),
              nodes=(0, 1, 2), edges=((2, 0, 1.0), (2, 1, 1.0))):
    return Community(core=core, cost=cost, centers=centers,
                     pnodes=pnodes, nodes=nodes, edges=edges)


class TestDotDetails:
    def test_every_node_declared_before_edges(self):
        dot = community_to_dot(community())
        lines = dot.splitlines()
        node_lines = [i for i, l in enumerate(lines)
                      if NODE_LINE.match(l)]
        edge_lines = [i for i, l in enumerate(lines) if "->" in l]
        assert max(node_lines) < min(edge_lines)

    def test_node_and_edge_counts(self):
        c = community()
        dot = community_to_dot(c)
        assert dot.count("->") == len(c.edges)
        declared = sum(
            1 for line in dot.splitlines() if NODE_LINE.match(line))
        assert declared == len(c.nodes)

    def test_center_and_knode_styling_disjoint_sets(self):
        c = community(core=(0,), centers=(0,), nodes=(0,), edges=())
        dot = community_to_dot(c)
        # one node that is both knode and center gets both styles
        assert "peripheries=2" in dot and "fillcolor" in dot


class TestProfileMath:
    def test_single_community(self):
        p = profile_results([community(cost=3.5)])
        assert p.count == 1
        assert p.avg_cost == 3.5
        assert p.min_cost == p.max_cost == 3.5
        assert p.distinct_nodes == 3
        assert p.multi_center_rate == 0.0

    def test_multi_center_rate(self):
        single = community(centers=(2,))
        multi = community(centers=(2, 0))
        p = profile_results([single, multi])
        assert p.multi_center == 1
        assert p.multi_center_rate == 0.5
        assert p.avg_centers == 1.5

    def test_empty_profile_is_all_zero(self):
        p = profile_results([])
        assert p == ResultProfile(0, 0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0)

    def test_overlap_matrix_symmetry(self):
        a = community(nodes=(0, 1, 2))
        b = community(nodes=(1, 2, 3))
        matrix = overlap_matrix([a, b])
        assert matrix[0][1] == matrix[1][0] == pytest.approx(2 / 4)

    def test_overlap_matrix_top_limits(self):
        items = [community() for _ in range(10)]
        matrix = overlap_matrix(items, top=3)
        assert len(matrix) == 3
