"""Router semantics against a real two-shard fig4 fleet.

The shard backends are genuine :class:`CommunityService` servers on
ephemeral ports (the router speaks HTTP to them through
:class:`ServiceClient`); the router itself is driven through
:meth:`RouterService.handle` — no router socket needed.
"""

import json

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX, \
    figure4_graph
from repro.engine.engine import QueryEngine
from repro.exceptions import ServiceError
from repro.service import CommunityService
from repro.shard import RouterService, partition_snapshot
from repro.snapshot.store import SnapshotStore
from repro.text.inverted_index import CommunityIndex


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """(router, single-box service, manifest) over partitioned fig4."""
    tmp = tmp_path_factory.mktemp("fleet")
    dbg = figure4_graph()
    store = SnapshotStore(tmp / "store")
    snapshot = store.publish(dbg, CommunityIndex.build(dbg, 10.0),
                             provenance={"dataset": "fig4"})
    manifest, _ = partition_snapshot(tmp / "store", tmp / "parts", 2)
    shards = []
    urls = []
    for entry in manifest.shards:
        engine = QueryEngine.from_snapshot(
            tmp / "parts" / entry.store / entry.snapshot_id)
        service = CommunityService(engine, port=0).start()
        shards.append(service)
        urls.append(service.url)
    router = RouterService(manifest, urls, root=tmp / "parts")
    reference = CommunityService(
        QueryEngine.from_snapshot(snapshot.path), port=0)
    yield router, reference, manifest
    router.shutdown()
    reference.shutdown()
    for service in shards:
        service.shutdown()


def _post(service, path, payload):
    status, _, body, _ = service.handle(
        "POST", path, json.dumps(payload).encode())
    return status, json.loads(body)


def _norm(response):
    return sorted((tuple(c["core"]), round(c["cost"], 9))
                  for c in response["communities"])


def test_router_rejects_mismatched_urls(fleet):
    _, _, manifest = fleet
    with pytest.raises(ServiceError):
        RouterService(manifest, ["http://127.0.0.1:1"])


def test_query_all_matches_single_box(fleet):
    router, reference, _ = fleet
    body = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
            "mode": "all"}
    status, routed = _post(router, "/query", body)
    ref_status, single = _post(reference, "/query", body)
    assert status == ref_status == 200
    assert routed["count"] == single["count"]
    assert _norm(routed) == _norm(single)
    assert routed["shards_answered"] == routed["shards_total"] == 2
    assert routed["partial"] is False
    # The router's PDall contract: canonical (cost, core) order.
    keys = [(c["cost"], tuple(c["core"]))
            for c in routed["communities"]]
    assert keys == sorted(keys)


def test_query_top_k_matches_single_box(fleet):
    router, reference, _ = fleet
    for k in (1, 3, 5, 50):
        body = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
                "k": k}
        _, routed = _post(router, "/query", body)
        _, single = _post(reference, "/query", body)
        assert [round(c["cost"], 9) for c in routed["communities"]] \
            == [round(c["cost"], 9) for c in single["communities"]]
        assert _norm(routed) == _norm(single)


def test_query_labels_are_global(fleet):
    router, _, _ = fleet
    dbg = figure4_graph()
    _, routed = _post(router, "/query",
                      {"keywords": list(FIG4_QUERY),
                       "rmax": FIG4_RMAX, "k": 2, "labels": True})
    for community in routed["communities"]:
        for node, label in community["labels"].items():
            assert dbg.label_of(int(node)) == label


def test_unknown_keyword_is_definitive_400(fleet):
    router, _, _ = fleet
    status, body = _post(router, "/query",
                         {"keywords": ["nosuchkeyword"], "rmax": 4.0})
    assert status == 400
    assert "does not occur" in body["error"]


def test_batch_matches_single_box(fleet):
    router, reference, _ = fleet
    body = {"queries": [
        {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 3},
        {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
         "mode": "all"},
    ]}
    status, routed = _post(router, "/batch", body)
    _, single = _post(reference, "/batch", body)
    assert status == 200
    assert routed["queries"] == 2
    topk_r, all_r = routed["results"]
    topk_s, all_s = single["results"]
    assert [round(c["cost"], 9) for c in topk_r["communities"]] \
        == [round(c["cost"], 9) for c in topk_s["communities"]]
    assert _norm(all_r) == _norm(all_s)
    for entry in routed["results"]:
        assert entry["shards_answered"] == entry["shards_total"]
        assert entry["partial"] is False


def test_batch_validation(fleet):
    router, _, _ = fleet
    status, _ = _post(router, "/batch", {"queries": []})
    assert status == 400
    status, _ = _post(router, "/batch", {"queries": ["nope"]})
    assert status == 400


def test_healthz_aggregates_fleet(fleet):
    router, _, manifest = fleet
    status, _, body, _ = router.handle("GET", "/healthz", b"")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["generation"] == manifest.generation
    assert health["shards_reachable"] == 2
    for row in health["shards"]:
        assert row["snapshot"] == row["expected_snapshot"]


def test_metrics_exposes_router_series(fleet):
    router, _, _ = fleet
    _post(router, "/query",
          {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 2})
    status, _, body, content_type = router.handle("GET", "/metrics",
                                                  b"")
    assert status == 200
    assert content_type.startswith("text/plain")
    for series in ("repro_router_queries_total",
                   "repro_router_fanout_legs_total",
                   "repro_router_merge_rounds_total",
                   "repro_router_shards 2",
                   "repro_router_shard_info",
                   "repro_router_manifest_info"):
        assert series in body, series
    assert 'path="shard:00"' in body


def test_reload_same_generation_is_noop(fleet):
    router, _, manifest = fleet
    status, body = _post(router, "/admin/reload", {})
    assert status == 200
    assert body["reloaded"] is False
    assert body["generation"] == manifest.generation


def test_reload_shard_count_mismatch_is_400(fleet, tmp_path):
    router, _, _ = fleet
    dbg = figure4_graph()
    store = SnapshotStore(tmp_path / "store")
    store.publish(dbg, CommunityIndex.build(dbg, 10.0))
    partition_snapshot(tmp_path / "store", tmp_path / "parts3", 3)
    status, body = _post(router, "/admin/reload",
                         {"path": str(tmp_path / "parts3")})
    assert status == 400
    assert "3" in body["error"]


def test_unknown_route_404(fleet):
    router, _, _ = fleet
    status, _, _, _ = router.handle("GET", "/nope", b"")
    assert status == 404
