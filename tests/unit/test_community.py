"""Unit tests for the Community model."""

from repro.core.community import (
    Community,
    community_sort_key,
    rank_table,
)
from repro.datasets.paper_example import figure4_graph


def make(core=(0, 1), cost=3.0, centers=(2,), pnodes=(3,),
         nodes=(0, 1, 2, 3), edges=((0, 1, 1.0),)):
    return Community(core=core, cost=cost, centers=centers,
                     pnodes=pnodes, nodes=nodes, edges=edges)


class TestBasics:
    def test_knodes_deduplicate_core(self):
        c = make(core=(0, 0, 1))
        assert c.knodes == frozenset({0, 1})

    def test_size(self):
        assert make().size == 4

    def test_multi_center(self):
        assert not make(centers=(2,)).is_multi_center()
        assert make(centers=(2, 3)).is_multi_center()

    def test_frozen(self):
        c = make()
        try:
            c.cost = 0.0
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestRelabel:
    def test_relabel_all_fields(self):
        c = make(core=(0, 1), centers=(2,), pnodes=(3,),
                 nodes=(0, 1, 2, 3), edges=((0, 1, 1.0), (2, 3, 2.0)))
        mapping = {0: 10, 1: 11, 2: 12, 3: 13}
        r = c.relabel(mapping)
        assert r.core == (10, 11)
        assert r.centers == (12,)
        assert r.pnodes == (13,)
        assert r.nodes == (10, 11, 12, 13)
        assert r.edges == ((10, 11, 1.0), (12, 13, 2.0))
        assert r.cost == c.cost

    def test_relabel_sorts_outputs(self):
        c = make(centers=(2, 3))
        r = c.relabel({0: 5, 1: 4, 2: 9, 3: 8})
        assert r.centers == (8, 9)


class TestDescribe:
    def test_describe_uses_labels(self):
        dbg = figure4_graph()
        c = make(core=(3, 7), centers=(6,), pnodes=(),
                 nodes=(3, 6, 7), edges=())
        text = c.describe(dbg)
        assert "v4" in text and "v8" in text and "v7" in text
        assert "cost=3" in text

    def test_describe_includes_pnodes_when_present(self):
        dbg = figure4_graph()
        text = make(pnodes=(9,), nodes=(0, 1, 2, 3, 9)).describe(dbg)
        assert "pnodes" in text and "v10" in text


class TestOrdering:
    def test_sort_key_cost_then_core(self):
        a = make(core=(0, 1), cost=1.0)
        b = make(core=(0, 2), cost=1.0)
        c = make(core=(0, 0), cost=2.0)
        assert sorted([c, b, a], key=community_sort_key) == [a, b, c]

    def test_rank_table(self):
        a, b = make(cost=1.0), make(cost=2.0)
        table = rank_table([a, b])
        assert table[1] is a and table[2] is b
