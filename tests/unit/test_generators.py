"""Unit tests for the random graph generators."""

from repro.graph.generators import (
    gnp_random_digraph,
    line_database_graph,
    power_law_digraph,
    random_database_graph,
)


class TestGnp:
    def test_deterministic_by_seed(self):
        a = gnp_random_digraph(10, 0.3, seed=5)
        b = gnp_random_digraph(10, 0.3, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = gnp_random_digraph(12, 0.3, seed=1)
        b = gnp_random_digraph(12, 0.3, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_no_self_loops(self):
        g = gnp_random_digraph(10, 0.8, seed=0)
        assert all(u != v for u, v, _ in g.edges())

    def test_extreme_probabilities(self):
        assert gnp_random_digraph(5, 0.0, seed=0).m == 0
        assert gnp_random_digraph(5, 1.0, seed=0).m == 20

    def test_integer_weights_default(self):
        g = gnp_random_digraph(8, 0.5, seed=3)
        assert all(w == int(w) for _, _, w in g.edges())


class TestPowerLaw:
    def test_connected_in_degree_skew(self):
        g = power_law_digraph(200, m_per_node=2, seed=1)
        cg = g.compile()
        degrees = sorted(
            (cg.in_degree(u) for u in range(cg.n)), reverse=True)
        # preferential attachment: the top node clearly beats the median
        assert degrees[0] >= 3 * max(1, degrees[len(degrees) // 2])

    def test_bidirected(self):
        cg = power_law_digraph(30, seed=2).compile()
        for u, v, _ in cg.edges():
            assert cg.has_edge(v, u)


class TestRandomDatabaseGraph:
    def test_every_keyword_planted(self):
        dbg = random_database_graph(10, 0.2, ["a", "b", "c"],
                                    keyword_prob=0.0, seed=4)
        for kw in ("a", "b", "c"):
            assert dbg.nodes_with_keyword(kw)

    def test_without_ensure_can_be_empty(self):
        dbg = random_database_graph(10, 0.2, ["a"], keyword_prob=0.0,
                                    seed=4, ensure_keywords=False)
        assert dbg.nodes_with_keyword("a") == []

    def test_bidirected_flag(self):
        dbg = random_database_graph(12, 0.3, ["a"], seed=9,
                                    bidirected=True)
        for u, v, _ in dbg.graph.edges():
            assert dbg.graph.has_edge(v, u)


class TestLineGraph:
    def test_distances_along_path(self):
        dbg = line_database_graph([1.0, 2.0], [{"a"}, set(), {"b"}])
        assert dbg.n == 3 and dbg.m == 4  # bidirected
        assert dbg.nodes_with_keyword("a") == [0]

    def test_directed_variant(self):
        dbg = line_database_graph([1.0], [set(), set()],
                                  bidirected=False)
        assert dbg.m == 1
