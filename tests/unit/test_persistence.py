"""Unit tests for graph and index serialization."""

import pytest

from repro.core import top_k
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.exceptions import GraphError, QueryError
from repro.graph.io import load_database_graph, save_database_graph
from repro.text.inverted_index import CommunityIndex
from repro.text.persistence import load_index, save_index


class TestGraphRoundTrip:
    def test_round_trip_plain(self, fig4, tmp_path):
        path = tmp_path / "g.json"
        save_database_graph(fig4, path)
        loaded = load_database_graph(path)
        assert loaded.n == fig4.n and loaded.m == fig4.m
        assert sorted(loaded.graph.edges()) \
            == sorted(fig4.graph.edges())
        for u in range(fig4.n):
            assert loaded.keywords_of(u) == fig4.keywords_of(u)
            assert loaded.label_of(u) == fig4.label_of(u)

    def test_round_trip_gzip(self, fig4, tmp_path):
        path = tmp_path / "g.json.gz"
        save_database_graph(fig4, path)
        loaded = load_database_graph(path)
        assert loaded.n == fig4.n

    def test_composite_pk_provenance_restored(self, tiny_dblp,
                                              tmp_path):
        _, dbg = tiny_dblp
        path = tmp_path / "dblp.json.gz"
        save_database_graph(dbg, path)
        loaded = load_database_graph(path)
        restored = [loaded.provenance_of(u) for u in range(loaded.n)]
        original = [dbg.provenance_of(u) for u in range(dbg.n)]
        assert restored == original  # tuples, not lists

    def test_queries_identical_after_reload(self, fig4, tmp_path):
        path = tmp_path / "g.json"
        save_database_graph(fig4, path)
        loaded = load_database_graph(path)
        before = top_k(fig4, list(FIG4_QUERY), 5, FIG4_RMAX)
        after = top_k(loaded, list(FIG4_QUERY), 5, FIG4_RMAX)
        assert [(c.core, c.cost) for c in before] \
            == [(c.core, c.cost) for c in after]

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(GraphError):
            load_database_graph(path)


class TestIndexRoundTrip:
    def test_round_trip(self, fig4, tmp_path):
        index = CommunityIndex.build(fig4, radius=FIG4_RMAX)
        path = tmp_path / "idx.json.gz"
        save_index(index, path)
        loaded = load_index(path, fig4)
        assert loaded.radius == index.radius
        for kw in index.node_index.keywords():
            assert loaded.nodes(kw) == index.nodes(kw)
            assert loaded.edges(kw) == index.edges(kw)

    def test_queries_identical_with_loaded_index(self, fig4, tmp_path):
        index = CommunityIndex.build(fig4, radius=FIG4_RMAX)
        path = tmp_path / "idx.json"
        save_index(index, path)
        search = CommunitySearch(fig4, index=load_index(path, fig4))
        results = search.top_k(list(FIG4_QUERY), 5, FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0, 14.0,
                                             15.0]

    def test_wrong_graph_rejected(self, fig4, tmp_path):
        index = CommunityIndex.build(fig4, radius=FIG4_RMAX)
        path = tmp_path / "idx.json"
        save_index(index, path)
        from repro.graph.digraph import DiGraph
        from repro.graph.database_graph import DatabaseGraph
        small = DatabaseGraph(DiGraph(2).compile(), [set(), set()])
        with pytest.raises(QueryError):
            load_index(path, small)

    def test_rejects_foreign_file(self, fig4, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(QueryError):
            load_index(path, fig4)
