"""Unit tests for the synthetic DBLP / IMDB generators."""

import pytest

from repro.datasets.dblp import (
    DBLPConfig,
    PAPERS_PER_AUTHOR,
    WRITES_PER_PAPER,
    dblp_graph,
    generate_dblp,
)
from repro.datasets.imdb import IMDBConfig, generate_imdb, imdb_graph
from repro.datasets.vocab import query_keywords


class TestDBLPConfig:
    def test_ratios_follow_paper(self):
        config = DBLPConfig(n_authors=1000)
        assert config.n_papers == round(1000 * PAPERS_PER_AUTHOR)
        assert config.n_writes_target \
            == round(config.n_papers * WRITES_PER_PAPER)

    def test_tiny_is_small(self):
        assert DBLPConfig.tiny().total_tuples_estimate < 1500


class TestDBLPGeneration:
    def test_schema_tables(self, tiny_dblp):
        db, _ = tiny_dblp
        assert db.table_names == ("Author", "Paper", "Write", "Cite")

    def test_deterministic(self):
        a = generate_dblp(DBLPConfig.tiny())
        b = generate_dblp(DBLPConfig.tiny())
        assert a.stats() == b.stats()

    def test_different_seed_differs(self):
        a = generate_dblp(DBLPConfig.tiny(seed=1))
        b = generate_dblp(DBLPConfig.tiny(seed=2))
        assert [r["Title"] for r in a.table("Paper").scan()] \
            != [r["Title"] for r in b.table("Paper").scan()]

    def test_authors_per_paper_near_paper_average(self):
        db = generate_dblp(DBLPConfig(n_authors=800))
        ratio = len(db.table("Write")) / len(db.table("Paper"))
        assert 2.1 < ratio < 2.8  # paper: 2.46

    def test_graph_is_bidirected(self, tiny_dblp):
        _, dbg = tiny_dblp
        assert dbg.m == 2 * dbg.graph.m // 2  # sanity
        for u, v, _ in list(dbg.graph.edges())[:50]:
            assert dbg.graph.has_edge(v, u)

    def test_keywords_planted_at_kwf(self, tiny_dblp):
        db, dbg = tiny_dblp
        total = db.total_rows()
        for kwf in (0.0009, 0.0015):
            for kw in query_keywords(kwf, 2):
                count = len(dbg.nodes_with_keyword(kw))
                target = max(1, round(kwf * total))
                assert abs(count - target) <= max(1, target // 5)

    def test_author_labels_used(self, tiny_dblp):
        db, dbg = tiny_dblp
        first_author = next(db.table("Author").scan())
        assert dbg.label_of(0) == first_author["Name"]


class TestIMDBConfig:
    def test_density_properties(self):
        config = IMDBConfig(n_users=10, n_movies=5, n_ratings=100)
        assert config.ratings_per_user == 10.0
        assert config.ratings_per_movie == 20.0


class TestIMDBGeneration:
    def test_schema_tables(self, tiny_imdb):
        db, _ = tiny_imdb
        assert db.table_names == ("Users", "Movies", "Ratings")

    def test_deterministic(self):
        a = generate_imdb(IMDBConfig.tiny())
        b = generate_imdb(IMDBConfig.tiny())
        assert a.stats() == b.stats()

    def test_ratings_dominate(self, tiny_imdb):
        db, _ = tiny_imdb
        stats = db.stats()
        assert stats["Ratings"] > stats["Users"] + stats["Movies"]

    def test_denser_than_dblp(self, tiny_imdb, tiny_dblp):
        # the property the paper leans on: IMDB references per tuple
        # far exceed DBLP's
        imdb_db, _ = tiny_imdb
        dblp_db, _ = tiny_dblp
        imdb_density = imdb_db.total_references() / imdb_db.total_rows()
        dblp_density = dblp_db.total_references() / dblp_db.total_rows()
        assert imdb_density > dblp_density

    def test_rating_pairs_unique(self, tiny_imdb):
        db, _ = tiny_imdb
        pairs = [(r["UserID"], r["MovieID"])
                 for r in db.table("Ratings").scan()]
        assert len(pairs) == len(set(pairs))

    def test_movie_titles_carry_keywords(self, tiny_imdb):
        _, dbg = tiny_imdb
        kw = query_keywords(0.0015, 1)[0]
        assert dbg.nodes_with_keyword(kw)

    def test_graph_shape(self, tiny_imdb):
        db, dbg = tiny_imdb
        assert dbg.n == db.total_rows()
        assert dbg.m == 4 * len(db.table("Ratings"))
