"""Unit tests for the compiled CSR graph."""

import pytest

from repro.exceptions import EdgeError, NodeNotFoundError
from repro.graph.csr import CompiledGraph, subgraph_mapping


@pytest.fixture()
def triangle():
    return CompiledGraph.from_edges(
        3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])


class TestFromEdges:
    def test_empty_graph(self):
        cg = CompiledGraph.from_edges(4, [])
        assert cg.n == 4 and cg.m == 0
        assert list(cg.out_edges(2)) == []
        assert list(cg.edges()) == []

    def test_rejects_out_of_range_source(self):
        with pytest.raises(NodeNotFoundError):
            CompiledGraph.from_edges(2, [(5, 0, 1.0)])

    def test_rejects_out_of_range_target(self):
        with pytest.raises(NodeNotFoundError):
            CompiledGraph.from_edges(2, [(0, 5, 1.0)])

    def test_rejects_negative_weight(self):
        with pytest.raises(EdgeError):
            CompiledGraph.from_edges(2, [(0, 1, -0.1)])

    def test_rejects_negative_node_count(self):
        with pytest.raises(EdgeError):
            CompiledGraph.from_edges(-1, [])

    def test_parallel_edges_keep_minimum_weight(self):
        cg = CompiledGraph.from_edges(
            2, [(0, 1, 4.0), (0, 1, 1.5), (0, 1, 9.0)])
        assert cg.m == 1
        assert cg.edge_weight(0, 1) == 1.5


class TestAdjacency:
    def test_out_edges(self, triangle):
        assert list(triangle.out_edges(0)) == [(1, 1.0)]
        assert list(triangle.out_edges(1)) == [(2, 2.0)]

    def test_in_edges_reverse_view(self, triangle):
        assert list(triangle.in_edges(0)) == [(2, 3.0)]
        assert list(triangle.in_edges(1)) == [(0, 1.0)]

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1

    def test_in_degree_counts_all_sources(self):
        cg = CompiledGraph.from_edges(
            3, [(0, 2, 1.0), (1, 2, 1.0)])
        assert cg.in_degree(2) == 2
        assert cg.in_degree(0) == 0

    def test_node_bounds_checked(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.out_degree(7)
        with pytest.raises(NodeNotFoundError):
            list(triangle.in_edges(-1))

    def test_edges_iterates_all(self, triangle):
        assert sorted(triangle.edges()) == [
            (0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]


class TestEdgeLookup:
    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_edge_weight_missing_raises(self, triangle):
        with pytest.raises(EdgeError):
            triangle.edge_weight(1, 0)


class TestInducedEdges:
    def test_induced_subgraph_edges(self, triangle):
        assert triangle.induced_edges([0, 1]) == [(0, 1, 1.0)]
        assert triangle.induced_edges([0, 1, 2]) == sorted(
            triangle.edges())

    def test_induced_empty(self, triangle):
        assert triangle.induced_edges([]) == []

    def test_induced_deduplicates_input(self, triangle):
        assert triangle.induced_edges([0, 0, 1, 1]) == [(0, 1, 1.0)]


def test_subgraph_mapping_is_dense_and_sorted():
    assert subgraph_mapping([7, 3, 9, 3]) == {3: 0, 7: 1, 9: 2}
