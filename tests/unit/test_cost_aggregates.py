"""Unit tests for pluggable cost aggregates ("sum" vs "max")."""

import pytest

from repro.core import all_communities, naive_all, top_k
from repro.core.cost import MAX, SUM, CostAggregate, resolve_aggregate
from repro.core.getcommunity import find_centers
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    node_id,
)
from repro.exceptions import QueryError


class TestResolution:
    def test_named_aggregates(self):
        assert resolve_aggregate("sum") is SUM
        assert resolve_aggregate("max") is MAX
        assert resolve_aggregate() is SUM

    def test_pass_through(self):
        custom = CostAggregate("min", min)
        assert resolve_aggregate(custom) is custom

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            resolve_aggregate("median")

    def test_callable(self):
        assert SUM([1.0, 2.0]) == 3.0
        assert MAX([1.0, 2.0]) == 2.0


class TestMaxAggregateOnFig4:
    def test_find_centers_max(self, fig4):
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        centers = find_centers(fig4.graph, core, FIG4_RMAX, MAX)
        # v11: distances (6, 5, 0) -> max 6; v12: (3, 8, 3) -> max 8
        assert centers[node_id("v11")] == 6.0
        assert centers[node_id("v12")] == 8.0

    def test_same_core_set_different_ranking(self, fig4):
        by_sum = all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX)
        by_max = all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX,
                                 aggregate="max")
        assert sorted(c.core for c in by_sum) \
            == sorted(c.core for c in by_max)
        # under max, R3's best center v4 has distances (0, 3, 4)
        best = top_k(fig4, list(FIG4_QUERY), 1, FIG4_RMAX,
                     aggregate="max")[0]
        assert best.cost == 4.0

    def test_topk_sorted_under_max(self, fig4):
        results = top_k(fig4, list(FIG4_QUERY), 10, FIG4_RMAX,
                        aggregate="max")
        costs = [c.cost for c in results]
        assert costs == sorted(costs)

    def test_naive_agrees_under_max(self, fig4):
        ref = naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX,
                        aggregate="max")
        got = top_k(fig4, list(FIG4_QUERY), 10, FIG4_RMAX,
                    aggregate="max")
        assert [c.cost for c in got] == [c.cost for c in ref]

    def test_max_cost_bounded_by_rmax(self, fig4):
        # under max, every community cost is <= Rmax by definition
        for c in all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX,
                                 aggregate="max"):
            assert c.cost <= FIG4_RMAX


class TestFacadeAggregate:
    def test_facade_threads_aggregate(self, fig4):
        search = CommunitySearch(fig4)
        search.build_index(radius=FIG4_RMAX)
        by_max = search.top_k(list(FIG4_QUERY), 5, FIG4_RMAX,
                              aggregate="max")
        assert [c.cost for c in by_max] == sorted(
            c.cost for c in by_max)
        assert by_max[0].cost == 4.0

    def test_baselines_agree_under_max(self, fig4):
        search = CommunitySearch(fig4)
        reference = None
        for alg in ("pd", "bu", "td", "naive"):
            costs = sorted(
                c.cost for c in search.all_communities(
                    list(FIG4_QUERY), FIG4_RMAX, algorithm=alg,
                    aggregate="max"))
            if reference is None:
                reference = costs
            assert costs == reference
