"""Unit tests for the admission controller
(:mod:`repro.service.admission`)."""

import threading
import time

import pytest

from repro.exceptions import QueryError
from repro.service.admission import AdmissionController
from repro.service.errors import DeadlineExceeded, Overloaded


@pytest.fixture()
def controller():
    ac = AdmissionController(workers=2, queue_depth=2)
    yield ac
    ac.shutdown()


class TestBasicExecution:
    def test_run_returns_result(self, controller):
        assert controller.run(lambda remaining: 41 + 1) == 42
        assert controller.stats.completed == 1

    def test_job_receives_remaining_budget(self, controller):
        remaining = controller.run(lambda r: r, deadline_seconds=30.0)
        assert remaining is not None
        assert 0 < remaining <= 30.0

    def test_no_deadline_passes_none(self, controller):
        assert controller.run(lambda r: r) is None

    def test_job_exception_propagates(self, controller):
        def boom(remaining):
            raise QueryError("bad query")
        with pytest.raises(QueryError, match="bad query"):
            controller.run(boom)
        assert controller.stats.failed == 1

    def test_invalid_sizing_rejected(self):
        with pytest.raises(QueryError):
            AdmissionController(workers=0)
        with pytest.raises(QueryError):
            AdmissionController(queue_depth=0)


class TestShedding:
    def test_queue_full_sheds_overloaded(self, controller):
        release = threading.Event()

        def block(remaining):
            release.wait(5.0)
            return True

        # Occupy both workers, then fill both queue slots.
        futures = [controller.submit(block) for _ in range(2)]
        deadline = time.monotonic() + 5.0
        while controller.in_flight < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        futures += [controller.submit(block) for _ in range(2)]
        # ...so the fifth submission is shed immediately.
        with pytest.raises(Overloaded):
            controller.submit(block)
        assert controller.stats.shed_queue_full == 1
        release.set()
        assert all(f.result(timeout=5.0) for f in futures)

    def test_load_at_2x_capacity_sheds_not_queues(self):
        """2x (workers + queue) concurrent clients arriving at once:
        at most a capacity's worth is admitted, the excess sheds with
        429/503 — nothing waits unboundedly."""
        ac = AdmissionController(workers=2, queue_depth=2)
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def client():
            barrier.wait()
            try:
                ac.run(lambda r: time.sleep(0.2), deadline_seconds=10.0)
                outcome = "ok"
            except Overloaded:
                outcome = "429"
            except DeadlineExceeded:
                outcome = "503"
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(8)]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        elapsed = time.monotonic() - start
        ac.shutdown()
        assert len(outcomes) == 8
        assert set(outcomes) <= {"ok", "429", "503"}
        # At least the workers' jobs complete; at least the burst past
        # workers+queue sheds (the exact split depends on how fast the
        # workers dequeue during the burst).
        assert outcomes.count("ok") >= 2
        assert outcomes.count("429") + outcomes.count("503") >= 2
        assert ac.stats.shed_queue_full + ac.stats.shed_deadline >= 2
        # Shed requests did not serialize behind the slow ones.
        assert elapsed < 5.0

    def test_spent_deadline_rejected_at_submit(self, controller):
        with pytest.raises(DeadlineExceeded):
            controller.submit(lambda r: r, deadline_seconds=0.0)

    def test_deadline_expired_in_queue_sheds_503(self):
        ac = AdmissionController(workers=1, queue_depth=4)
        release = threading.Event()
        ac.submit(lambda r: release.wait(5.0))    # occupy the worker
        stale = ac.submit(lambda r: "ran",
                          deadline_seconds=0.05)
        time.sleep(0.1)                           # let it go stale
        release.set()
        with pytest.raises(DeadlineExceeded):
            stale.result(timeout=5.0)
        assert ac.stats.shed_deadline >= 1
        ac.shutdown()

    def test_run_gives_up_at_deadline_while_running(self, controller):
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            controller.run(lambda r: time.sleep(5.0),
                           deadline_seconds=0.1)
        assert time.monotonic() - start < 2.0


class TestLifecycle:
    def test_shutdown_drains_queue_with_overloaded(self):
        ac = AdmissionController(workers=1, queue_depth=4)
        release = threading.Event()
        ac.submit(lambda r: release.wait(5.0))
        queued = ac.submit(lambda r: "never")
        ac.shutdown(timeout=0.1)
        release.set()
        with pytest.raises(Overloaded):
            queued.result(timeout=5.0)

    def test_submit_after_shutdown_sheds(self, controller):
        controller.shutdown()
        with pytest.raises(Overloaded):
            controller.submit(lambda r: r)

    def test_gauges_settle_to_zero(self, controller):
        controller.run(lambda r: None)
        assert controller.queued == 0
        assert controller.in_flight == 0

    def test_stats_as_dict_covers_all_counters(self, controller):
        controller.run(lambda r: None)
        flat = controller.stats.as_dict()
        assert flat["admission_submitted"] == 1.0
        assert flat["admission_completed"] == 1.0
        assert set(flat) == {
            "admission_submitted", "admission_completed",
            "admission_failed", "admission_shed_queue_full",
            "admission_shed_deadline"}
