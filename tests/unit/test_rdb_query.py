"""Unit tests for the relational query layer and secondary indexes."""

import pytest

from repro.exceptions import SchemaError
from repro.rdb.database import Database
from repro.rdb.query import col, query
from repro.rdb.schema import Column, ForeignKey, TableSchema


@pytest.fixture()
def db():
    database = Database("shop")
    database.create_table(TableSchema(
        "Customer",
        [Column("cid", int), Column("name", str), Column("age", int)],
        "cid"))
    database.create_table(TableSchema(
        "Order",
        [Column("oid", int), Column("cid", int),
         Column("total", float), Column("note", str, nullable=True)],
        "oid",
        [ForeignKey("cid", "Customer")]))
    customers = [(1, "ana", 34), (2, "bora", 28), (3, "chen", 41),
                 (4, "dai", 28)]
    for cid, name, age in customers:
        database.insert("Customer", {"cid": cid, "name": name,
                                     "age": age})
    orders = [(10, 1, 99.5, "gift"), (11, 1, 15.0, None),
              (12, 2, 42.0, "rush order"), (13, 3, 7.25, None)]
    for oid, cid, total, note in orders:
        database.insert("Order", {"oid": oid, "cid": cid,
                                  "total": total, "note": note})
    return database


class TestPredicates:
    def test_comparison_operators(self, db):
        rows = query(db, "Customer").where(col("age").ge(30)).run()
        assert sorted(r["name"] for r in rows) == ["ana", "chen"]
        rows = query(db, "Customer").where(col("age").lt(30)).run()
        assert sorted(r["name"] for r in rows) == ["bora", "dai"]
        assert query(db, "Customer").where(col("age").ne(28)).count() \
            == 2
        assert query(db, "Customer").where(col("age").le(28)).count() \
            == 2
        assert query(db, "Customer").where(col("age").gt(40)).count() \
            == 1

    def test_combinators(self, db):
        both = query(db, "Customer").where(
            col("age").eq(28) & col("name").eq("dai")).run()
        assert [r["cid"] for r in both] == [4]
        either = query(db, "Customer").where(
            col("name").eq("ana") | col("name").eq("chen")).run()
        assert len(either) == 2
        negated = query(db, "Customer").where(~col("age").eq(28)).run()
        assert len(negated) == 2

    def test_null_handling(self, db):
        rows = query(db, "Order").where(col("note").is_null()).run()
        assert sorted(r["oid"] for r in rows) == [11, 13]
        # comparisons never match NULLs
        assert query(db, "Order").where(col("note").lt("z")).count() \
            == 2

    def test_contains(self, db):
        rows = query(db, "Order").where(
            col("note").contains("rush")).run()
        assert [r["oid"] for r in rows] == [12]

    def test_unknown_column_raises(self, db):
        with pytest.raises(SchemaError):
            query(db, "Customer").where(col("bogus").eq(1)).run()


class TestProjectionOrderLimit:
    def test_select(self, db):
        rows = query(db, "Customer").select("name").run()
        assert all(set(r) == {"name"} for r in rows)

    def test_order_by(self, db):
        rows = query(db, "Customer").order_by("age").run()
        assert [r["age"] for r in rows] == [28, 28, 34, 41]
        rows = query(db, "Customer").order_by(
            "age", descending=True).run()
        assert rows[0]["age"] == 41

    def test_limit(self, db):
        rows = query(db, "Customer").order_by("cid").limit(2).run()
        assert [r["cid"] for r in rows] == [1, 2]

    def test_limit_validation(self, db):
        with pytest.raises(SchemaError):
            query(db, "Customer").limit(-1)

    def test_iteration(self, db):
        assert len(list(query(db, "Customer"))) == 4


class TestJoins:
    def test_inner_join(self, db):
        rows = (query(db, "Order")
                .join("Customer", on=("cid", "cid"))
                .where(col("name").eq("ana"))
                .run())
        assert sorted(r["oid"] for r in rows) == [10, 11]

    def test_join_column_disambiguation(self, db):
        rows = (query(db, "Order")
                .join("Customer", on=("cid", "cid"))
                .run())
        # cid matches on both sides -> no disambiguation needed
        assert all("Customer.cid" not in r for r in rows)
        assert all("name" in r for r in rows)

    def test_join_then_aggregate_style(self, db):
        rows = (query(db, "Order")
                .join("Customer", on=("cid", "cid"))
                .where(col("total").gt(20.0))
                .order_by("total", descending=True)
                .select("name", "total")
                .run())
        assert rows[0] == {"name": "ana", "total": 99.5}

    def test_join_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            query(db, "Order").join("Customer", on=("cid", "bogus"))


class TestSecondaryIndexes:
    def test_index_lookup(self, db):
        table = db.table("Order")
        table.create_index("cid")
        assert table.has_index("cid")
        rows = table.index_lookup("cid", 1)
        assert sorted(r["oid"] for r in rows) == [10, 11]
        assert table.index_lookup("cid", 99) == []

    def test_lookup_without_index_raises(self, db):
        with pytest.raises(SchemaError):
            db.table("Order").index_lookup("cid", 1)

    def test_index_maintained_on_insert(self, db):
        table = db.table("Order")
        table.create_index("cid")
        db.insert("Order", {"oid": 14, "cid": 1, "total": 1.0,
                            "note": None})
        assert sorted(r["oid"] for r in table.index_lookup("cid", 1)) \
            == [10, 11, 14]

    def test_query_layer_uses_index(self, db):
        db.table("Customer").create_index("name")
        rows = query(db, "Customer").where(col("name").eq("chen")).run()
        assert [r["cid"] for r in rows] == [3]

    def test_index_and_residual_predicates(self, db):
        db.table("Order").create_index("cid")
        rows = (query(db, "Order")
                .where(col("cid").eq(1) & col("total").gt(50.0))
                .run())
        assert [r["oid"] for r in rows] == [10]
