"""Unit tests for the generation-keyed result cache
(:mod:`repro.engine.results`).

Covers the tentpole contracts: canonical keys collide exactly when
they should, an exact repeat is a pure lookup, a smaller k slices the
cached prefix, a larger k resumes the retained frontier instead of
recomputing, memory is byte-bounded LRU, and a generation swap is a
total, free invalidation.
"""

import pytest

from repro.core.community import Community
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import (
    CachedStream,
    QueryContext,
    QueryEngine,
    QuerySpec,
    ResultCache,
    ResultEntry,
    community_nbytes,
    result_key,
)
from repro.text.maintenance import GraphDelta

FIG4_TOTAL = 5


@pytest.fixture()
def engine(fig4):
    e = QueryEngine(fig4)
    e.build_index(radius=FIG4_RMAX)
    return e


def _spec(k=None, mode=None, rmax=FIG4_RMAX, keywords=FIG4_QUERY,
          algorithm="pd"):
    mode = mode or ("topk" if k is not None else "all")
    return QuerySpec(tuple(keywords), rmax, mode=mode, k=k,
                     algorithm=algorithm)


def _fingerprint(communities):
    return [(c.core, c.cost, c.centers, c.nodes, c.edges)
            for c in communities]


class TestCanonicalKeys:
    def test_keyword_order_and_case_collide(self):
        a = QuerySpec(("XML", "jim"), 8.0, mode="topk", k=3)
        b = QuerySpec(("Jim", "xml"), 8.0, mode="topk", k=3)
        assert a.cache_key() == b.cache_key()

    def test_rmax_spellings_collide(self):
        """The satellite: ``0.5`` and ``0.50`` are one cache line."""
        a = QuerySpec(("a",), 0.5, mode="topk", k=3)
        b = QuerySpec(("a",), 0.50, mode="topk", k=3)
        assert a.cache_key() == b.cache_key()
        assert result_key(a.keywords, 0.5, "pd", "sum", "topk") \
            == result_key(b.keywords, 0.50, "pd", "sum", "topk")

    def test_k_changes_cache_key_but_not_result_key(self):
        a = QuerySpec(("a",), 8.0, mode="topk", k=2)
        b = QuerySpec(("a",), 8.0, mode="topk", k=4)
        assert a.cache_key() != b.cache_key()
        assert result_key(a.keywords, a.rmax, "pd", "sum", "topk") \
            == result_key(b.keywords, b.rmax, "pd", "sum", "topk")

    def test_every_dimension_separates_keys(self):
        base = result_key(("a",), 8.0, "pd", "sum", "topk")
        assert result_key(("b",), 8.0, "pd", "sum", "topk") != base
        assert result_key(("a",), 4.0, "pd", "sum", "topk") != base
        assert result_key(("a",), 8.0, "naive", "sum", "topk") != base
        assert result_key(("a",), 8.0, "pd", "max", "topk") != base
        assert result_key(("a",), 8.0, "pd", "sum", "all") != base


class TestPrefixReuse:
    def test_exact_repeat_is_pure_lookup(self, engine):
        ctx = QueryContext()
        cold = engine.top_k(_spec(k=3), ctx)
        warm = engine.top_k(_spec(k=3), ctx)
        assert _fingerprint(cold) == _fingerprint(warm)
        assert ctx.counter("result_cache_misses") == 1
        assert ctx.counter("result_cache_hits") == 1
        assert ctx.counter("result_cache_extensions") == 0

    def test_smaller_k_slices_the_prefix(self, engine):
        cold = engine.top_k(_spec(k=4))
        ctx = QueryContext()
        sliced = engine.top_k(_spec(k=2), ctx)
        assert _fingerprint(sliced) == _fingerprint(cold[:2])
        assert ctx.counter("result_cache_hits") == 1
        assert ctx.counter("result_cache_extensions") == 0

    def test_larger_k_resumes_the_frontier(self, engine, fig4):
        engine.top_k(_spec(k=2))
        ctx = QueryContext()
        extended = engine.top_k(_spec(k=4), ctx)
        assert ctx.counter("result_cache_extensions") == 1
        assert ctx.counter("result_cache_misses") == 0
        # Byte-identical to a cold k=4 on a fresh engine.
        fresh = QueryEngine(fig4)
        fresh.build_index(radius=FIG4_RMAX)
        assert _fingerprint(extended) \
            == _fingerprint(fresh.top_k(_spec(k=4)))

    def test_comm_all_caches_complete_answers_only(self, engine):
        engine.top_k(_spec(k=2))          # ranked prefix, incomplete
        ctx = QueryContext()
        everything = engine.run_all(_spec(), ctx)
        assert len(everything) == FIG4_TOTAL
        # The topk prefix entry did not (and must not) answer COMM-all.
        assert ctx.counter("result_cache_misses") == 1
        again = engine.run_all(_spec(), ctx)
        assert ctx.counter("result_cache_hits") == 1
        assert _fingerprint(again) == _fingerprint(everything)

    def test_overlong_k_marks_entry_complete(self, engine):
        ctx = QueryContext()
        everything = engine.top_k(_spec(k=100), ctx)
        assert len(everything) == FIG4_TOTAL
        again = engine.top_k(_spec(k=100), ctx)
        assert _fingerprint(again) == _fingerprint(everything)
        assert ctx.counter("result_cache_hits") == 1
        assert ctx.counter("result_cache_extensions") == 0

    def test_budget_capable_backends_bypass_the_cache(self, engine):
        ctx = QueryContext()
        engine.top_k(_spec(k=2, algorithm="bu"), ctx)
        engine.top_k(_spec(k=2, algorithm="bu"), ctx)
        assert ctx.counter("result_cache_misses") == 0
        assert ctx.counter("result_cache_hits") == 0
        assert len(engine.results) == 0


class TestInvalidation:
    def test_delta_swap_invalidates(self, engine, fig4):
        engine.top_k(_spec(k=3))
        assert len(engine.results) == 1
        engine.apply_delta(GraphDelta(
            new_nodes=[({"a"}, "extra", None)],
            new_edges=[(fig4.n, 0, 1.0), (0, fig4.n, 1.0)]))
        assert len(engine.results) == 0
        assert engine.results.stats.invalidations == 1
        ctx = QueryContext()
        engine.top_k(_spec(k=3), ctx)
        assert ctx.counter("result_cache_misses") == 1

    def test_stale_entry_dropped_on_sight(self):
        cache = ResultCache(1 << 20)
        cache.install(ResultEntry("k", "g1", prefix=[], complete=True))
        assert cache.lookup("k", "g2") is None
        assert cache.stats.stale_drops == 1
        assert "k" not in cache


class TestByteBudget:
    def _community(self, i):
        return Community(core=(i,), cost=float(i), centers=(i,),
                         pnodes=(i,), nodes=(i,), edges=())

    def test_lru_eviction_by_bytes(self):
        one = self._community(1)
        per_entry = 512 + community_nbytes(one)
        cache = ResultCache(2 * per_entry)
        for name in ("a", "b"):
            cache.install(ResultEntry(name, "g", prefix=[one],
                                      complete=True))
        assert cache.keys() == ("a", "b")
        cache.lookup("a", "g")            # touch: b becomes LRU
        cache.install(ResultEntry("c", "g", prefix=[one],
                                  complete=True))
        assert cache.stats.evictions == 1
        assert cache.keys() == ("a", "c")
        assert cache.bytes == 2 * per_entry

    def test_bytes_track_install_and_invalidate(self):
        cache = ResultCache(1 << 20)
        one = self._community(1)
        cache.install(ResultEntry("a", "g", prefix=[one],
                                  complete=True))
        assert cache.bytes == 512 + community_nbytes(one)
        cache.invalidate()
        assert cache.bytes == 0
        assert len(cache) == 0

    def test_evicted_entry_keeps_serving_live_streams(self, engine):
        stream = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        assert isinstance(stream, CachedStream)
        first = stream.take(2)
        engine.results.invalidate()       # forget it for new lookups
        rest = stream.take(100)
        costs = [c.cost for c in first + rest]
        assert len(first + rest) == FIG4_TOTAL
        assert costs == sorted(costs)


class TestDisabledCache:
    def test_zero_budget_disables_everything(self, fig4):
        engine = QueryEngine(fig4, result_cache_bytes=0)
        engine.build_index(radius=FIG4_RMAX)
        assert not engine.results.enabled
        ctx = QueryContext()
        engine.top_k(_spec(k=3), ctx)
        engine.top_k(_spec(k=3), ctx)
        assert ctx.counter("result_cache_hits") == 0
        assert ctx.counter("result_cache_misses") == 0
        assert len(engine.results) == 0
        # Streams fall back to the raw (projected) stream types.
        stream = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        assert not isinstance(stream, CachedStream)
        assert len(stream.take(100)) == FIG4_TOTAL


class TestCachedStreamViews:
    def test_views_keep_private_cursors(self, engine):
        a = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        b = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        first_a = a.take(3)
        first_b = b.take(3)
        assert _fingerprint(first_a) == _fingerprint(first_b)
        assert a.emitted == b.emitted == 3
        rest_a = a.take(100)
        assert a.exhausted
        assert not b.exhausted
        assert _fingerprint(b.take(100)) == _fingerprint(rest_a)
        assert b.exhausted
        assert b.next_community() is None

    def test_second_view_pays_no_enumeration(self, engine):
        a = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        a.take(3)
        ctx = QueryContext()
        b = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX,
                                context=ctx)
        assert ctx.counter("result_cache_hits") == 1
        b.take(3)
        assert ctx.seconds("enumerate") == 0.0
        assert ctx.counter("projection_runs") == 0
        assert ctx.counter("communities") == 3

    def test_iteration_protocol(self, engine):
        stream = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        assert len(list(stream)) == FIG4_TOTAL

    def test_negative_k_rejected(self, engine):
        from repro.exceptions import QueryError
        stream = engine.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        with pytest.raises(QueryError):
            stream.take(-1)


class TestWarm:
    def test_warm_computes_then_skips(self, engine):
        specs = [_spec(k=3), _spec(),
                 _spec(k=3, algorithm="bu")]      # uncacheable
        assert engine.warm(specs) == 2
        assert engine.warm(specs) == 0            # already warm
        ctx = QueryContext()
        engine.top_k(_spec(k=3), ctx)
        assert ctx.counter("result_cache_hits") == 1

    def test_warm_skips_bad_specs(self, engine):
        bad = QuerySpec(("nosuchkeyword",), FIG4_RMAX, mode="topk",
                        k=2)
        assert engine.warm([bad, _spec(k=2)]) == 1
