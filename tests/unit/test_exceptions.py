"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    EdgeError,
    GraphError,
    IntegrityError,
    NodeNotFoundError,
    QueryError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, NodeNotFoundError, EdgeError, SchemaError,
        IntegrityError, QueryError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_graph_errors(self):
        assert issubclass(NodeNotFoundError, GraphError)
        assert issubclass(EdgeError, GraphError)

    def test_node_not_found_carries_context(self):
        error = NodeNotFoundError(7, 5)
        assert error.node == 7 and error.n == 5
        assert "7" in str(error) and "5" in str(error)

    def test_one_except_catches_everything(self):
        for raiser in (
            lambda: (_ for _ in ()).throw(EdgeError("x")),
            lambda: (_ for _ in ()).throw(QueryError("y")),
        ):
            with pytest.raises(ReproError):
                next(raiser())
