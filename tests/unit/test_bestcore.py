"""Unit tests for BestCore() (Algorithm 3)."""

from repro.core.bestcore import best_core
from repro.core.neighbor import neighbor
from repro.graph.digraph import DiGraph


def star(weights):
    """Center 0 with spokes 1..n, edge 0->i with given weight."""
    g = DiGraph(len(weights) + 1)
    for i, w in enumerate(weights, start=1):
        g.add_edge(0, i, w)
    return g.compile()


class TestBestCore:
    def test_empty_input(self):
        assert best_core([]) is None

    def test_single_keyword(self):
        cg = star([2.0, 5.0])
        ns = neighbor(cg, [1, 2], rmax=10.0)
        result = best_core([ns])
        assert result is not None
        assert result.core == (1,)
        assert result.cost == 0.0  # keyword node itself is the center
        assert result.center == 1

    def test_disjoint_sets_return_none(self):
        g = DiGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        cg = g.compile()
        n1 = neighbor(cg, [1], rmax=2.0)   # {0, 1}
        n2 = neighbor(cg, [3], rmax=2.0)   # {2, 3}
        assert best_core([n1, n2]) is None

    def test_minimum_cost_core_selected(self):
        # center 0 reaches kw1 nodes {1 (w=1), 2 (w=9)} and kw2 {3 (2)}
        cg = star([1.0, 9.0, 2.0])
        n1 = neighbor(cg, [1, 2], rmax=10.0)
        n2 = neighbor(cg, [3], rmax=10.0)
        result = best_core([n1, n2])
        assert result.core == (1, 3)
        assert result.cost == 3.0
        assert result.center == 0

    def test_cost_is_sum_over_positions(self):
        # the same node serving two keyword positions counts twice
        g = DiGraph(2)
        g.add_edge(0, 1, 2.0)
        cg = g.compile()
        ns = neighbor(cg, [1], rmax=5.0)
        result = best_core([ns, ns])
        assert result.core == (1, 1)
        assert result.cost == 0.0  # centered at the knode itself

    def test_deterministic_tie_break(self):
        # two centers with identical cost: smaller core wins, then
        # smaller center id
        g = DiGraph(4)
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        cg = g.compile()
        n1 = neighbor(cg, [2, 3], rmax=5.0)
        result = best_core([n1])
        assert result.cost == 0.0
        assert result.core == (2,)
        assert result.center == 2

    def test_result_accessors(self):
        cg = star([1.0])
        ns = neighbor(cg, [1], rmax=5.0)
        result = best_core([ns])
        core, cost, center = result
        assert (core, cost, center) == (result.core, result.cost,
                                        result.center)
