"""Unit tests for the mutable DiGraph builder."""

import pytest

from repro.exceptions import EdgeError, NodeNotFoundError
from repro.graph.digraph import DiGraph, from_edge_list


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.n == 0
        assert g.m == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph(-1)

    def test_add_node_returns_sequential_ids(self):
        g = DiGraph()
        assert g.add_node() == 0
        assert g.add_node() == 1
        assert g.n == 2

    def test_add_nodes_returns_range(self):
        g = DiGraph(2)
        assert list(g.add_nodes(3)) == [2, 3, 4]
        assert g.n == 5

    def test_add_negative_nodes_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph().add_nodes(-2)

    def test_contains(self):
        g = DiGraph(3)
        assert 0 in g and 2 in g
        assert 3 not in g
        assert -1 not in g


class TestEdges:
    def test_add_edge_records_weight(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 2.5)
        assert list(g.edges()) == [(0, 1, 2.5)]

    def test_edge_to_missing_node_rejected(self):
        g = DiGraph(2)
        with pytest.raises(NodeNotFoundError):
            g.add_edge(0, 5)
        with pytest.raises(NodeNotFoundError):
            g.add_edge(5, 0)

    def test_negative_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(EdgeError):
            g.add_edge(0, 1, -1.0)

    def test_zero_weight_allowed(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 0.0)
        assert g.m == 1

    def test_bidirected_edge_adds_both_directions(self):
        g = DiGraph(2)
        g.add_bidirected_edge(0, 1, 2.0, 3.0)
        assert sorted(g.edges()) == [(0, 1, 2.0), (1, 0, 3.0)]

    def test_self_loop_allowed_at_build_time(self):
        g = DiGraph(1)
        g.add_edge(0, 0, 1.0)
        assert g.m == 1

    def test_repr_mentions_sizes(self):
        g = DiGraph(3)
        g.add_edge(0, 1)
        assert "n=3" in repr(g) and "m=1" in repr(g)


class TestFromEdgeList:
    def test_round_trip(self):
        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.n == 3
        assert sorted(g.edges()) == [(0, 1, 1.0), (1, 2, 2.0)]


class TestCompile:
    def test_compile_preserves_sizes(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        cg = g.compile()
        assert cg.n == 3 and cg.m == 2

    def test_compile_collapses_parallel_edges_to_lightest(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 3.0)
        cg = g.compile()
        assert cg.m == 1
        assert cg.edge_weight(0, 1) == 2.0
