"""QuerySpec keyword normalization: sorted, case-folded, cached once.

The projection cache keys on ``(frozenset(keywords), rmax)`` and the
spec normalizes the keyword tuple itself, so every ordering and casing
of the same keyword set is one query: one cache entry, one projection,
one routing decision.
"""

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError
from repro.text.inverted_index import CommunityIndex


def test_keywords_sorted_and_casefolded():
    spec = QuerySpec(("b", "A", "c"), 4.0)
    assert spec.keywords == ("a", "b", "c")


def test_orderings_build_equal_specs():
    assert QuerySpec(("a", "b"), 4.0) == QuerySpec(("b", "a"), 4.0)
    assert QuerySpec(("XML", "db"), 4.0) == QuerySpec(("db", "xml"), 4.0)
    assert hash(QuerySpec(("a", "b"), 4.0)) \
        == hash(QuerySpec(("b", "a"), 4.0))


def test_cache_key_is_order_and_case_insensitive():
    keys = {QuerySpec(kws, 4.0).cache_key()
            for kws in [("a", "b"), ("b", "a"), ("B", "A"), ("A", "b")]}
    assert len(keys) == 1


def test_empty_keywords_still_rejected():
    with pytest.raises(QueryError):
        QuerySpec((), 4.0)


def test_describe_uses_normalized_keywords():
    assert "a, b" in QuerySpec(("B", "a"), 4.0).describe()


def test_reordered_query_hits_projection_cache(fig4):
    """{a,b} then {b,a} is one projection: the second run is a hit.

    Result cache disabled so the repeat actually reaches the
    projection layer."""
    engine = QueryEngine(fig4, index=CommunityIndex.build(fig4, 8.0),
                         result_cache_bytes=0)
    first = engine.run_all(QuerySpec(("a", "b"), 6.0))
    assert engine.cache.stats.misses == 1
    second = engine.run_all(QuerySpec(("b", "A"), 6.0))
    assert engine.cache.stats.hits == 1
    assert engine.cache.stats.misses == 1
    assert [(c.core, c.cost) for c in first] \
        == [(c.core, c.cost) for c in second]


def test_casefolded_query_matches_uppercase_data(fig4):
    """Graph keywords fold at construction, queries fold in the spec:
    'A' finds what 'a' finds."""
    engine = QueryEngine(fig4)
    lower = engine.run_all(QuerySpec(("a", "b"), 6.0))
    upper = engine.run_all(QuerySpec(("A", "B"), 6.0))
    assert [(c.core, c.cost) for c in lower] \
        == [(c.core, c.cost) for c in upper]
