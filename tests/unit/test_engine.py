"""Unit tests for the execution engine subsystem.

Covers the :class:`~repro.engine.spec.QuerySpec` contract, the
algorithm registry, the projection cache (hits, eviction, generation
invalidation, and the headline repeated-query speedup) and the
per-stage instrumentation channel.
"""

import time

import pytest

from repro.core.community import Community
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import (
    AlgorithmRegistry,
    AlgorithmSpec,
    ProjectionCache,
    QueryContext,
    QueryEngine,
    QuerySpec,
    default_registry,
)
from repro.exceptions import QueryError
from repro.text.maintenance import GraphDelta

ALGORITHMS = ("pd", "bu", "td", "naive")


@pytest.fixture()
def engine(fig4):
    e = QueryEngine(fig4)
    e.build_index(radius=FIG4_RMAX)
    return e


class TestQuerySpec:
    def test_normalizes_keywords_to_tuple(self):
        spec = QuerySpec(["a", "b"], 5.0)
        assert spec.keywords == ("a", "b")

    def test_empty_keywords_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec((), 5.0)

    def test_negative_rmax_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec(("a",), -1.0)

    def test_bad_mode_rejected(self):
        with pytest.raises(QueryError):
            QuerySpec(("a",), 5.0, mode="stream")

    def test_topk_requires_positive_k(self):
        with pytest.raises(QueryError):
            QuerySpec.comm_k(("a",), 0, 5.0)
        with pytest.raises(QueryError):
            QuerySpec(("a",), 5.0, mode="topk")

    def test_cache_key_ignores_keyword_order(self):
        assert QuerySpec(("a", "b"), 5.0).cache_key() \
            == QuerySpec(("b", "a"), 5.0).cache_key()

    def test_with_algorithm_and_describe(self):
        spec = QuerySpec.comm_k(("a", "b"), 3, 5.0).with_algorithm("bu")
        assert spec.algorithm == "bu"
        assert "COMM-k" in spec.describe()
        assert "bu" in spec.describe()


class TestRegistry:
    def test_default_backends_registered(self):
        registry = default_registry()
        assert registry.names() == ("bu", "naive", "pd", "td")
        assert "pd" in registry and len(registry) == 4

    def test_unknown_algorithm_lists_names(self):
        with pytest.raises(QueryError, match="unknown algorithm"):
            default_registry().get("bogus")

    def test_duplicate_registration_needs_replace(self):
        registry = default_registry()
        spec = registry.get("pd")
        with pytest.raises(QueryError):
            registry.register(spec)
        registry.register(spec, replace=True)

    def test_all_backends_agree_through_engine(self, engine):
        reference = None
        for algorithm in ALGORITHMS:
            got = sorted(
                (c.core, c.cost) for c in engine.run_all(
                    QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX,
                                       algorithm=algorithm)))
            if reference is None:
                reference = got
            assert got == reference

    def test_topk_backends_agree_on_costs(self, engine):
        reference = None
        for algorithm in ALGORITHMS:
            costs = [c.cost for c in engine.top_k(
                QuerySpec.comm_k(FIG4_QUERY, 4, FIG4_RMAX,
                                 algorithm=algorithm))]
            if reference is None:
                reference = costs
            assert costs == reference

    def test_iter_all_fails_eagerly_on_bad_algorithm(self, engine):
        with pytest.raises(QueryError):
            engine.iter_all(
                QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX,
                                   algorithm="bogus"))

    def test_custom_backend_routes_through_facade(self, fig4):
        def fake_all(dbg, keywords, rmax, *, node_lists=None,
                     aggregate="sum", budget_seconds=None, stats=None):
            return iter([Community(core=(0,), cost=0.0, centers=(0,),
                                   pnodes=(0,), nodes=(0,),
                                   edges=())])

        def fake_top_k(dbg, keywords, k, rmax, *, node_lists=None,
                       aggregate="sum", budget_seconds=None,
                       stats=None):
            return list(fake_all(dbg, keywords, rmax))[:k]

        registry = default_registry()
        registry.register(AlgorithmSpec("fake", fake_all, fake_top_k))
        search = CommunitySearch(fig4, registry=registry)
        results = search.all_communities(list(FIG4_QUERY), FIG4_RMAX,
                                         algorithm="fake")
        assert [c.core for c in results] == [(0,)]


class TestProjectionCache:
    def test_repeated_query_hits_cache(self, engine):
        """The result cache absorbs the repeat before the projection
        cache is even consulted: one projection, one enumeration."""
        ctx = QueryContext()
        spec = QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX)
        first = engine.run_all(spec, ctx)
        second = engine.run_all(spec, ctx)
        assert ctx.counter("projection_runs") == 1
        assert ctx.counter("projection_cache_misses") == 1
        assert ctx.counter("result_cache_misses") == 1
        assert ctx.counter("result_cache_hits") == 1
        assert [(c.core, c.cost, c.nodes, c.edges) for c in first] \
            == [(c.core, c.cost, c.nodes, c.edges) for c in second]

    def test_repeated_query_hits_projection_cache_when_results_off(
            self, fig4):
        """With the result cache disabled the projection cache still
        serves the repeat (the pre-results behaviour)."""
        engine = QueryEngine(fig4, result_cache_bytes=0)
        engine.build_index(FIG4_RMAX)
        ctx = QueryContext()
        spec = QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX)
        engine.run_all(spec, ctx)
        engine.run_all(spec, ctx)
        assert ctx.counter("projection_runs") == 1
        assert ctx.counter("projection_cache_misses") == 1
        assert ctx.counter("projection_cache_hits") == 1
        assert ctx.counter("result_cache_hits") == 0

    def test_keyword_order_shares_entry(self, engine):
        ctx = QueryContext()
        keywords = list(FIG4_QUERY)
        engine.project(keywords, FIG4_RMAX, ctx)
        engine.project(list(reversed(keywords)), FIG4_RMAX, ctx)
        assert ctx.counter("projection_runs") == 1
        assert ctx.counter("projection_cache_hits") == 1

    def test_distinct_rmax_is_a_miss(self, engine):
        ctx = QueryContext()
        engine.project(list(FIG4_QUERY), FIG4_RMAX, ctx)
        engine.project(list(FIG4_QUERY), FIG4_RMAX - 1.0, ctx)
        assert ctx.counter("projection_runs") == 2

    def test_use_cache_false_bypasses(self, engine):
        ctx = QueryContext()
        engine.project(list(FIG4_QUERY), FIG4_RMAX, ctx)
        engine.project(list(FIG4_QUERY), FIG4_RMAX, ctx,
                       use_cache=False)
        assert ctx.counter("projection_runs") == 2
        assert ctx.counter("projection_cache_hits") == 0

    def test_lru_eviction_at_capacity(self, fig4):
        engine = QueryEngine(fig4, cache_capacity=1)
        engine.build_index(radius=FIG4_RMAX)
        ctx = QueryContext()
        engine.project(["a"], FIG4_RMAX, ctx)
        engine.project(["b"], FIG4_RMAX, ctx)     # evicts ["a"]
        engine.project(["a"], FIG4_RMAX, ctx)     # miss again
        assert ctx.counter("projection_runs") == 3
        assert engine.cache.stats.evictions == 2
        assert len(engine.cache) == 1

    def test_index_assignment_invalidates(self, engine):
        ctx = QueryContext()
        engine.project(list(FIG4_QUERY), FIG4_RMAX, ctx)
        generation = engine.generation
        epoch = engine.generation_epoch
        engine.index = engine.index       # any assignment invalidates
        assert engine.generation != generation
        assert engine.generation_epoch == epoch + 1
        assert len(engine.cache) == 0
        engine.project(list(FIG4_QUERY), FIG4_RMAX, ctx)
        assert ctx.counter("projection_runs") == 2

    def test_apply_delta_evicts_and_answers_fresh(self, fig4):
        engine = QueryEngine(fig4)
        engine.build_index(radius=FIG4_RMAX)
        ctx = QueryContext()
        spec = QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX)
        engine.run_all(spec, ctx)
        assert len(engine.cache) == 1

        delta = GraphDelta(new_nodes=[({"a"}, "extra", None)],
                           new_edges=[(fig4.n, 0, 1.0),
                                      (0, fig4.n, 1.0)])
        new_dbg, new_index = engine.apply_delta(delta)
        assert len(engine.cache) == 0
        assert new_index.generation == 1
        assert engine.dbg is new_dbg

        after = engine.run_all(spec, ctx)
        assert ctx.counter("projection_runs") == 2   # re-projected
        fresh = CommunitySearch(new_dbg)
        fresh.build_index(radius=FIG4_RMAX)
        expected = fresh.all_communities(list(FIG4_QUERY), FIG4_RMAX)
        assert [(c.core, c.cost, c.nodes) for c in after] \
            == [(c.core, c.cost, c.nodes) for c in expected]

    def test_apply_delta_requires_index(self, fig4):
        with pytest.raises(QueryError):
            QueryEngine(fig4).apply_delta(GraphDelta())

    def test_stale_generation_dropped_on_sight(self, fig4):
        cache = ProjectionCache(capacity=4)
        engine = QueryEngine(fig4, cache=cache)
        engine.build_index(radius=FIG4_RMAX)
        projection = engine.project(list(FIG4_QUERY), FIG4_RMAX)
        key = (frozenset(FIG4_QUERY), float(FIG4_RMAX))
        assert cache.get(key, engine.generation) is projection
        assert cache.get(key, engine.generation + "-stale") is None
        assert cache.stats.stale_drops == 1
        assert key not in cache

    def test_invalid_capacity_rejected(self):
        with pytest.raises(QueryError):
            ProjectionCache(capacity=0)

    def test_warm_projection_at_least_2x_faster(self, engine):
        """The micro-benchmark behind the cache: a cache hit must beat
        re-running Algorithm 6 by at least 2x (it is a dict lookup, so
        in practice the ratio is orders of magnitude)."""
        keywords = list(FIG4_QUERY)

        def best_of(repeats, fn):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        cold = best_of(5, lambda: engine.project(
            keywords, FIG4_RMAX, use_cache=False))
        engine.project(keywords, FIG4_RMAX)       # fill the cache
        warm = best_of(5, lambda: engine.project(keywords, FIG4_RMAX))
        assert warm * 2 <= cold


class TestContext:
    def test_stages_recorded_for_projected_query(self, engine):
        ctx = QueryContext()
        engine.run_all(QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX), ctx)
        for stage in ("resolve", "project", "enumerate", "translate"):
            assert ctx.seconds(stage) >= 0.0
            assert stage in ctx.timings
        assert ctx.counter("communities") == 5
        assert ctx.total_seconds > 0.0

    def test_as_dict_flattens(self, engine):
        ctx = QueryContext()
        engine.run_all(QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX,
                                          algorithm="bu"), ctx)
        flat = ctx.as_dict()
        assert flat["project_seconds"] == ctx.seconds("project")
        assert flat["communities"] == 5.0
        assert flat["pool_candidates"] >= 5.0

    def test_merge_accumulates(self):
        a, b = QueryContext(), QueryContext()
        a.add_time("project", 1.0)
        b.add_time("project", 2.0)
        b.count("communities", 3)
        b.baseline.pool_peak = 7
        a.merge(b)
        assert a.seconds("project") == 3.0
        assert a.counter("communities") == 3
        assert a.baseline.pool_peak == 7

    def test_render_mentions_stages_and_counters(self):
        ctx = QueryContext()
        assert ctx.render() == "(no instrumentation)"
        ctx.add_time("project", 0.5)
        ctx.count("projection_cache_hits")
        rendered = ctx.render()
        assert "project=" in rendered
        assert "projection_cache_hits=1" in rendered

    def test_facade_context_and_stats_channels(self, fig4):
        from repro.core.baselines.pool import BaselineStats
        search = CommunitySearch(fig4)
        search.build_index(radius=FIG4_RMAX)
        ctx = QueryContext()
        stats = BaselineStats()
        search.all_communities(list(FIG4_QUERY), FIG4_RMAX,
                               algorithm="bu", stats=stats, context=ctx)
        assert ctx.baseline is stats
        assert stats.candidates > 0

    def test_stream_counts_through_context(self, fig4):
        search = CommunitySearch(fig4)
        search.build_index(radius=FIG4_RMAX)
        ctx = QueryContext()
        stream = search.top_k_stream(list(FIG4_QUERY), FIG4_RMAX,
                                     context=ctx)
        stream.take(2)
        assert ctx.counter("communities") == 2
        assert ctx.seconds("translate") >= 0.0


class TestStageReport:
    def test_stage_table_and_breakdown(self, engine):
        from repro.analysis import stage_breakdown, stage_table
        ctx = QueryContext()
        engine.run_all(QuerySpec.comm_all(FIG4_QUERY, FIG4_RMAX), ctx)
        rows = stage_breakdown(ctx)
        assert [name for name, _, _ in rows][:2] == ["resolve",
                                                     "project"]
        assert abs(sum(share for _, _, share in rows) - 1.0) < 1e-9
        table = stage_table(ctx)
        assert "project" in table and "communities" in table

    def test_cache_effectiveness_aggregates(self, engine):
        from repro.analysis import cache_effectiveness
        contexts = []
        for _ in range(3):
            ctx = QueryContext()
            engine.project(list(FIG4_QUERY), FIG4_RMAX, ctx)
            contexts.append(ctx)
        summary = cache_effectiveness(contexts)
        assert summary["queries"] == 3.0
        assert summary["projection_runs"] == 1.0
        assert summary["cache_hits"] == 2.0
        assert summary["hit_rate"] == pytest.approx(2.0 / 3.0)
