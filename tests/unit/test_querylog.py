"""Unit tests for the service's hot-spec ring buffer
(:mod:`repro.service.querylog`) and the offline miner
(:mod:`repro.analysis.hot_keys`)."""

import pytest

from repro.analysis.hot_keys import hot_keys, warm_payloads
from repro.engine import QuerySpec
from repro.service.querylog import QueryLog


def _spec(keywords=("a", "b"), rmax=8.0, k=3, **kwargs):
    return QuerySpec(tuple(keywords), rmax, mode="topk", k=k,
                     **kwargs)


class TestQueryLog:
    def test_counts_aggregate_under_canonical_keys(self):
        log = QueryLog()
        log.record(_spec(("XML", "jim")))
        log.record(_spec(("Jim", "xml")))      # collides: same key
        log.record(_spec(("other",)))
        top = log.top()
        assert top[0]["count"] == 2
        assert top[0]["key"] == _spec(("xml", "jim")).cache_key()
        assert top[1]["count"] == 1
        assert len(log) == 3
        assert log.recorded == 3

    def test_rmax_spellings_share_a_row(self):
        log = QueryLog()
        log.record(_spec(rmax=0.5))
        log.record(_spec(rmax=0.50))
        assert len(log.top()) == 1
        assert log.top()[0]["count"] == 2

    def test_ring_ages_out_old_traffic(self):
        log = QueryLog(capacity=2)
        log.record(_spec(("a",)))
        log.record(_spec(("b",)))
        log.record(_spec(("c",)))              # evicts the 'a' record
        keys = {row["key"] for row in log.top()}
        assert _spec(("a",)).cache_key() not in keys
        assert len(log) == 2
        assert log.recorded == 3

    def test_top_n_limits_and_orders(self):
        log = QueryLog()
        for _ in range(3):
            log.record(_spec(("hot",)))
        log.record(_spec(("cold",)))
        rows = log.top(1)
        assert len(rows) == 1
        assert rows[0]["key"] == _spec(("hot",)).cache_key()

    def test_top_specs_round_trip(self):
        log = QueryLog()
        spec = _spec(("a", "b"), rmax=4.0, k=7, aggregate="max")
        log.record(spec)
        (rebuilt,) = log.top_specs(1)
        assert rebuilt.cache_key() == spec.cache_key()

    def test_replayable_payload_shape(self):
        log = QueryLog()
        log.record(_spec(("a",), rmax=4.0, k=2))
        query = log.top()[0]["query"]
        assert query == {"keywords": ["a"], "rmax": 4.0,
                         "mode": "topk", "k": 2, "algorithm": "pd",
                         "aggregate": "sum"}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)

    def test_as_dict_shape(self):
        log = QueryLog(capacity=8)
        log.record(_spec())
        assert log.as_dict() == {"capacity": 8, "size": 1,
                                 "distinct": 1, "recorded": 1}


class TestHotKeysMiner:
    def _rows(self):
        return [
            {"key": "a", "count": 2, "query": {"keywords": ["a"]}},
            {"key": "b", "count": 5, "query": {"keywords": ["b"]}},
            {"key": "a", "count": 1, "query": {"keywords": ["a"]}},
        ]

    def test_merges_and_sorts(self):
        rows = hot_keys(self._rows())
        assert [(r["key"], r["count"]) for r in rows] \
            == [("b", 5), ("a", 3)]

    def test_accepts_querylog_response_shape(self):
        rows = hot_keys({"querylog": {"size": 3},
                         "top": self._rows()}, top=1)
        assert [r["key"] for r in rows] == ["b"]

    def test_min_count_filters(self):
        rows = hot_keys(self._rows(), min_count=4)
        assert [r["key"] for r in rows] == ["b"]

    def test_warm_payloads_are_replayable_bodies(self):
        assert warm_payloads(self._rows(), top=1) \
            == [{"keywords": ["b"]}]

    def test_malformed_rows_skipped(self):
        rows = hot_keys([{"nope": 1}, "junk",
                         {"key": "a", "count": 1,
                          "query": {"keywords": ["a"]}}])
        assert len(rows) == 1
