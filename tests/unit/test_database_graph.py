"""Unit tests for DatabaseGraph."""

import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph


def make(n=3, edges=((0, 1, 1.0), (1, 2, 2.0)), keywords=None,
         labels=None, provenance=None):
    g = DiGraph(n)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    if keywords is None:
        keywords = [set() for _ in range(n)]
    return DatabaseGraph(g.compile(), keywords, labels, provenance)


class TestConstruction:
    def test_basic_properties(self):
        dbg = make()
        assert dbg.n == 3 and dbg.m == 2

    def test_keyword_length_mismatch_rejected(self):
        g = DiGraph(2).compile()
        with pytest.raises(GraphError):
            DatabaseGraph(g, [set()])

    def test_label_length_mismatch_rejected(self):
        g = DiGraph(2).compile()
        with pytest.raises(GraphError):
            DatabaseGraph(g, [set(), set()], labels=["x"])

    def test_provenance_length_mismatch_rejected(self):
        g = DiGraph(2).compile()
        with pytest.raises(GraphError):
            DatabaseGraph(g, [set(), set()], provenance=[None])

    def test_default_labels(self):
        dbg = make()
        assert dbg.label_of(0) == "v0"
        assert dbg.label_of(2) == "v2"

    def test_default_provenance_is_none(self):
        dbg = make()
        assert dbg.provenance_of(1) is None


class TestKeywords:
    def test_keywords_frozen(self):
        dbg = make(keywords=[{"a"}, {"a", "b"}, set()])
        assert dbg.keywords_of(1) == frozenset({"a", "b"})

    def test_nodes_with_keyword(self):
        dbg = make(keywords=[{"a"}, {"a", "b"}, {"b"}])
        assert dbg.nodes_with_keyword("a") == [0, 1]
        assert dbg.nodes_with_keyword("b") == [1, 2]
        assert dbg.nodes_with_keyword("zzz") == []

    def test_vocabulary(self):
        dbg = make(keywords=[{"a"}, {"b"}, set()])
        assert dbg.vocabulary() == {"a", "b"}

    def test_node_bounds(self):
        dbg = make()
        with pytest.raises(NodeNotFoundError):
            dbg.keywords_of(99)
        with pytest.raises(NodeNotFoundError):
            dbg.label_of(-1)


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        dbg = make(keywords=[{"a"}, {"b"}, {"c"}],
                   labels=["x", "y", "z"])
        sub, mapping = dbg.induced_subgraph([0, 1])
        assert sub.n == 2 and sub.m == 1
        assert mapping == {0: 0, 1: 1}
        assert sub.label_of(0) == "x"
        assert sub.keywords_of(1) == frozenset({"b"})

    def test_relabeling_is_dense_sorted(self):
        dbg = make()
        sub, mapping = dbg.induced_subgraph([2, 0])
        assert mapping == {0: 0, 2: 1}
        assert sub.n == 2 and sub.m == 0

    def test_duplicate_nodes_deduplicated(self):
        dbg = make()
        sub, _ = dbg.induced_subgraph([1, 1, 2])
        assert sub.n == 2
