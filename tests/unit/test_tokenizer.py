"""Unit tests for the tokenizer."""

import pytest

from repro.text.tokenizer import DEFAULT_STOPWORDS, Tokenizer, tokenize


class TestDefaultTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Graph Databases") == {"graph", "databases"}

    def test_punctuation_is_separator(self):
        assert tokenize("top-k, query!") == {"top", "k", "query"}

    def test_digits_kept(self):
        assert tokenize("dblp 2008") == {"dblp", "2008"}

    def test_empty_text(self):
        assert tokenize("") == set()
        assert tokenize("!!!") == set()

    def test_duplicates_collapse(self):
        assert tokenize("data data data") == {"data"}

    def test_no_stopword_removal_by_default(self):
        # The paper queries words like "all"; defaults must keep them.
        assert tokenize("all the data") == {"all", "the", "data"}


class TestConfiguredTokenizer:
    def test_stopwords_removed(self):
        t = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        assert t("the data of graphs") == {"data", "graphs"}

    def test_stopwords_case_insensitive(self):
        t = Tokenizer(stopwords=["THE"])
        assert t("The theory") == {"theory"}

    def test_min_length(self):
        t = Tokenizer(min_length=3)
        assert t("a db query") == {"query"}

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_tokens_preserve_order(self):
        t = Tokenizer()
        assert t.tokens("b a b c") == ["b", "a", "b", "c"]

    def test_callable_matches_keyword_set(self):
        t = Tokenizer()
        assert t("x y") == t.keyword_set("x y")
