"""Unit tests for invertedN / invertedE / CommunityIndex."""

import pytest

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.database_graph import DatabaseGraph
from repro.text.inverted_index import (
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
    python_object_size,
)


@pytest.fixture()
def chain():
    """0(a) -> 1 -> 2(b) -> 3, unit weights, bidirected."""
    g = DiGraph(4)
    for u in range(3):
        g.add_bidirected_edge(u, u + 1, 1.0, 1.0)
    return DatabaseGraph(
        g.compile(), [{"a"}, set(), {"b"}, set()])


class TestNodeIndex:
    def test_postings_sorted(self, chain):
        idx = NodeInvertedIndex.build(chain)
        assert idx.nodes("a") == [0]
        assert idx.nodes("b") == [2]
        assert idx.nodes("zzz") == []

    def test_restricted_vocabulary(self, chain):
        idx = NodeInvertedIndex.build(chain, keywords=["a"])
        assert "a" in idx
        assert "b" not in idx

    def test_entry_count_and_frequency(self, chain):
        idx = NodeInvertedIndex.build(chain)
        assert idx.entry_count() == 2
        assert idx.frequency("a", 4) == 0.25
        with pytest.raises(QueryError):
            idx.frequency("a", 0)

    def test_keywords_sorted(self, chain):
        assert NodeInvertedIndex.build(chain).keywords() == ["a", "b"]


class TestEdgeIndex:
    def test_radius_limits_edges(self, chain):
        nodes = NodeInvertedIndex.build(chain)
        idx = EdgeInvertedIndex.build(chain, nodes, radius=1.0)
        # nodes within 1 of node 0 (keyword a): {0, 1}
        assert idx.edges("a") == [(0, 1, 1.0), (1, 0, 1.0)]

    def test_direction_is_reach_toward_keyword(self, chain):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)  # 0 -> 1(a): 0 reaches a
        dbg = DatabaseGraph(g.compile(), [set(), {"a"}])
        nodes = NodeInvertedIndex.build(dbg)
        idx = EdgeInvertedIndex.build(dbg, nodes, radius=2.0)
        assert idx.edges("a") == [(0, 1, 1.0)]

    def test_unreachable_keyword_empty(self):
        g = DiGraph(2)  # no edges
        dbg = DatabaseGraph(g.compile(), [{"a"}, set()])
        nodes = NodeInvertedIndex.build(dbg)
        idx = EdgeInvertedIndex.build(dbg, nodes, radius=5.0)
        assert idx.edges("a") == []

    def test_negative_radius_rejected(self, chain):
        nodes = NodeInvertedIndex.build(chain)
        with pytest.raises(QueryError):
            EdgeInvertedIndex.build(chain, nodes, radius=-1.0)


class TestCommunityIndex:
    def test_build_and_lookups(self, chain):
        idx = CommunityIndex.build(chain, radius=2.0)
        assert idx.nodes("a") == [0]
        assert (1, 2, 1.0) in idx.edges("b")
        assert idx.radius == 2.0

    def test_require_keyword(self, chain):
        idx = CommunityIndex.build(chain, radius=2.0)
        idx.require_keyword("a")
        with pytest.raises(QueryError):
            idx.require_keyword("missing")

    def test_stats_shape(self, chain):
        idx = CommunityIndex.build(chain, radius=2.0)
        stats = idx.stats()
        assert stats["keywords"] == 2
        assert stats["node_postings"] == 2
        assert stats["size_bytes"] == idx.size_bytes()
        assert stats["build_seconds"] >= 0.0

    def test_size_accounting(self, chain):
        idx = CommunityIndex.build(chain, radius=2.0)
        expected = (8 * idx.node_index.entry_count()
                    + 24 * idx.edge_index.entry_count())
        assert idx.size_bytes() == expected
        assert python_object_size(idx) > 0

    def test_restricted_vocab_passed_through(self, chain):
        idx = CommunityIndex.build(chain, radius=2.0, keywords=["a"])
        assert idx.nodes("b") == []
