"""Unit tests for node-weighted views (paper footnote 1 extension)."""

import pytest

from repro.core import all_communities, top_k
from repro.exceptions import GraphError
from repro.graph.dijkstra import single_source_distances
from repro.graph.generators import line_database_graph
from repro.graph.node_weights import node_weighted_view


@pytest.fixture()
def path():
    """0(a) -1- 1 -2- 2(b), bidirected."""
    return line_database_graph([1.0, 2.0], [{"a"}, set(), {"b"}])


class TestView:
    def test_arrival_charging(self, path):
        view = node_weighted_view(path, [5.0, 7.0, 9.0])
        dist = single_source_distances(view.graph, 0)
        # 0 -> 1: edge 1 + nw(1)=7; 0 -> 2: + edge 2 + nw(2)=9
        assert dist[1] == 8.0
        assert dist[2] == 19.0
        assert dist[0] == 0.0  # source weight not charged

    def test_mapping_weights_default_zero(self, path):
        view = node_weighted_view(path, {1: 4.0})
        dist = single_source_distances(view.graph, 0)
        assert dist[1] == 5.0
        assert dist[2] == 7.0

    def test_zero_weights_is_identity(self, path):
        view = node_weighted_view(path, [0.0] * 3)
        assert sorted(view.graph.edges()) \
            == sorted(path.graph.edges())

    def test_metadata_carried_over(self, path):
        view = node_weighted_view(path, [1.0, 1.0, 1.0])
        assert view.keywords_of(0) == frozenset({"a"})
        assert view.label_of(2) == path.label_of(2)

    def test_length_mismatch_rejected(self, path):
        with pytest.raises(GraphError):
            node_weighted_view(path, [1.0])

    def test_negative_weight_rejected(self, path):
        with pytest.raises(GraphError):
            node_weighted_view(path, [0.0, -1.0, 0.0])


class TestQueriesOnView:
    def test_node_weights_change_costs(self, path):
        # charging the knodes raises every center->knode distance
        # (a center's own weight is never charged: it is a source)
        plain = top_k(path, ["a", "b"], 1, 10.0)[0]
        weighted = top_k(node_weighted_view(path, [10.0, 0.0, 10.0]),
                         ["a", "b"], 1, 30.0)[0]
        assert weighted.cost > plain.cost

    def test_node_weights_can_exclude_communities(self, path):
        # heavy knodes push the a—b connection beyond Rmax
        view = node_weighted_view(path, [100.0, 0.0, 100.0])
        assert all_communities(view, ["a", "b"], 10.0) == []
        assert all_communities(path, ["a", "b"], 10.0) != []
