"""Unit tests for Neighbor() (Algorithm 2)."""

import math

from repro.core.neighbor import neighbor
from repro.datasets.paper_example import (
    FIG4_KEYWORDS,
    figure4_graph,
    node_id,
    node_label,
)
from repro.graph.digraph import DiGraph


def labels(ns):
    return sorted(node_label(u) for u in ns)


class TestNeighborSemantics:
    def test_sources_always_included(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        ns = neighbor(g.compile(), [1], rmax=0.0)
        assert 1 in ns and len(ns) == 1
        assert ns.min_dist(1) == 0.0 and ns.src(1) == 1

    def test_direction_is_u_reaches_source(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 2.0)
        cg = g.compile()
        ns = neighbor(cg, [1], rmax=5.0)
        assert 0 in ns and ns.min_dist(0) == 2.0
        ns = neighbor(cg, [0], rmax=5.0)
        assert 1 not in ns  # 1 cannot reach 0

    def test_rmax_inclusive(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 3.0)
        assert 0 in neighbor(g.compile(), [1], rmax=3.0)
        assert 0 not in neighbor(g.compile(), [1], rmax=2.999)

    def test_nearest_source_tracked(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 5.0)
        ns = neighbor(g.compile(), [1, 2], rmax=10.0)
        assert ns.src(0) == 1 and ns.min_dist(0) == 1.0

    def test_empty_sources_empty_set(self):
        g = DiGraph(2)
        ns = neighbor(g.compile(), [], rmax=5.0)
        assert len(ns) == 0

    def test_get_and_pairs(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 2.0)
        ns = neighbor(g.compile(), [1], rmax=5.0)
        assert ns.get(0) == 2.0
        assert ns.get(42) == math.inf
        assert ns.pairs() == {0: (2.0, 1), 1: (0.0, 1)}


class TestPaperNeighborSets:
    """Every neighbor set the paper states for Fig. 4 (Section IV)."""

    def test_full_keyword_sets(self, fig4):
        g = fig4.graph
        expectations = {
            "a": ["v1", "v11", "v12", "v13", "v4", "v5", "v7", "v8",
                  "v9"],
            "b": ["v1", "v10", "v11", "v12", "v2", "v4", "v5", "v7",
                  "v8", "v9"],
            "c": ["v1", "v11", "v12", "v2", "v3", "v4", "v5", "v6",
                  "v7", "v9"],
        }
        for kw, expected in expectations.items():
            sources = [node_id(x) for x in FIG4_KEYWORDS[kw]]
            assert labels(neighbor(g, sources, 8.0)) == sorted(expected)

    def test_pinned_sets(self, fig4):
        g = fig4.graph
        expectations = {
            "v4": ["v1", "v4", "v5", "v7"],
            "v8": ["v10", "v11", "v12", "v4", "v7", "v8", "v9"],
            "v6": ["v4", "v6", "v7"],
            "v2": ["v1", "v2", "v5"],
        }
        for label, expected in expectations.items():
            assert labels(neighbor(g, [node_id(label)], 8.0)) \
                == sorted(expected)

    def test_restricted_c_set(self, fig4):
        sources = [node_id(x) for x in ("v3", "v9", "v11")]
        assert labels(neighbor(fig4.graph, sources, 8.0)) == sorted(
            ["v1", "v11", "v12", "v2", "v3", "v5", "v9"])

    def test_center_intersection(self, fig4):
        g = fig4.graph
        sets = [
            neighbor(g, [node_id(x) for x in FIG4_KEYWORDS[kw]], 8.0)
            for kw in ("a", "b", "c")]
        common = set(sets[0])
        for ns in sets[1:]:
            common &= set(ns)
        assert labels(common) == sorted(
            ["v1", "v4", "v5", "v7", "v9", "v11", "v12"])
