"""Unit tests for tree-answer internals (module-level helpers)."""

import pytest

from repro.core.trees import (
    TreeAnswer,
    _assemble,
    _is_minimal,
    _simple_paths,
    enumerate_trees,
)
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph


@pytest.fixture()
def diamond_dbg():
    """0 -> {1, 2} -> 3 plus a long arc 0 -> 3."""
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(0, 2, 1.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(2, 3, 1.0)
    g.add_edge(0, 3, 5.0)
    return DatabaseGraph(g.compile(), [set(), {"a"}, {"b"}, {"c"}])


class TestSimplePaths:
    def test_all_paths_found(self, diamond_dbg):
        paths = _simple_paths(diamond_dbg, 0, frozenset({3}), 10.0,
                              1000)
        found = sorted(p for p, _ in paths[3])
        assert found == [(0, 1, 3), (0, 2, 3), (0, 3)]

    def test_weight_bound_prunes(self, diamond_dbg):
        paths = _simple_paths(diamond_dbg, 0, frozenset({3}), 2.0,
                              1000)
        assert sorted(p for p, _ in paths[3]) == [(0, 1, 3), (0, 2, 3)]

    def test_max_paths_guard(self, diamond_dbg):
        with pytest.raises(QueryError):
            _simple_paths(diamond_dbg, 0, frozenset({1, 2, 3}), 10.0,
                          1)


class TestAssemble:
    def test_branching_union_is_tree(self, diamond_dbg):
        result = _assemble(0, [(0, 1), (0, 2)], diamond_dbg)
        assert result is not None
        nodes, edges, weight = result
        assert nodes == (0, 1, 2)
        assert weight == 2.0

    def test_remerging_union_rejected(self, diamond_dbg):
        # two different paths to node 3 give it two parents
        assert _assemble(0, [(0, 1, 3), (0, 2, 3)], diamond_dbg) \
            is None

    def test_shared_prefix_ok(self, diamond_dbg):
        result = _assemble(0, [(0, 1, 3), (0, 1)], diamond_dbg)
        assert result is not None
        _, edges, _ = result
        assert len(edges) == 2


class TestMinimality:
    def test_non_keyword_leaf_rejected(self, diamond_dbg):
        # leaf 0? build tree 1 -> ... cannot; craft directly:
        keyword_sets = [frozenset({1})]
        # tree: 0 -> 1 -> ... wait leaf is 1 (keyword) fine; test a
        # tree whose leaf 2 carries no queried keyword
        assert not _is_minimal(
            0, [0, 1, 2], [(0, 1, 1.0), (0, 2, 1.0)], keyword_sets)

    def test_single_child_non_keyword_root_rejected(self):
        keyword_sets = [frozenset({1})]
        assert not _is_minimal(0, [0, 1], [(0, 1, 1.0)],
                               keyword_sets)
        # but a keyword root with one child is fine
        keyword_sets = [frozenset({0, 1})]
        assert _is_minimal(0, [0, 1], [(0, 1, 1.0)], keyword_sets)

    def test_branching_root_accepted(self):
        keyword_sets = [frozenset({1}), frozenset({2})]
        assert _is_minimal(0, [0, 1, 2],
                           [(0, 1, 1.0), (0, 2, 1.0)], keyword_sets)


class TestEnumerate:
    def test_diamond_two_keyword_query(self, diamond_dbg):
        trees = enumerate_trees(diamond_dbg, ["a", "b"], 5.0)
        # only root 0 reaches both keyword nodes
        assert trees
        assert all(t.root == 0 for t in trees)
        best = trees[0]
        assert best.weight == 2.0
        assert set(best.nodes) == {0, 1, 2}

    def test_tree_answer_size_and_describe(self, diamond_dbg):
        tree = enumerate_trees(diamond_dbg, ["a", "b"], 5.0)[0]
        assert tree.size == 3
        text = tree.describe(diamond_dbg)
        assert "root=v0" in text and "weight=2" in text

    def test_dedupe_keeps_one_per_edge_set(self, diamond_dbg):
        trees = enumerate_trees(diamond_dbg, ["a", "a"], 5.0)
        keys = [frozenset(t.edges) for t in trees]
        assert len(keys) == len(set(keys))
