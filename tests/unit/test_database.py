"""Unit tests for the Database: schemas, integrity, stats."""

import pytest

from repro.exceptions import IntegrityError, SchemaError
from repro.rdb.database import Database, foreign_key_pairs
from repro.rdb.schema import Column, ForeignKey, TableSchema


@pytest.fixture()
def db():
    database = Database("test")
    database.create_table(TableSchema(
        "Parent", [Column("id", int), Column("name", str)], "id"))
    database.create_table(TableSchema(
        "Child",
        [Column("id", int), Column("parent", int, nullable=True)],
        "id",
        [ForeignKey("parent", "Parent")]))
    return database


class TestSchemaManagement:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(TableSchema(
                "Parent", [Column("id", int)], "id"))

    def test_fk_to_unknown_table_rejected(self):
        database = Database()
        with pytest.raises(SchemaError):
            database.create_table(TableSchema(
                "T", [Column("x", int)], "x",
                [ForeignKey("x", "Missing")]))

    def test_fk_must_target_single_column_pk(self, db):
        db.create_table(TableSchema(
            "Link", [Column("a", int), Column("b", int)], ("a", "b")))
        with pytest.raises(SchemaError):
            db.create_table(TableSchema(
                "T", [Column("x", int)], "x",
                [ForeignKey("x", "Link")]))

    def test_self_referencing_table_allowed(self):
        database = Database()
        database.create_table(TableSchema(
            "Node",
            [Column("id", int), Column("next", int, nullable=True)],
            "id",
            [ForeignKey("next", "Node")]))
        database.insert("Node", {"id": 1, "next": None})
        database.insert("Node", {"id": 2, "next": 1})

    def test_table_lookup(self, db):
        assert db.table("Parent").schema.name == "Parent"
        with pytest.raises(SchemaError):
            db.table("Missing")
        assert db.table_names == ("Parent", "Child")
        assert [t.schema.name for t in db.tables()] \
            == ["Parent", "Child"]


class TestIntegrity:
    def test_valid_reference(self, db):
        db.insert("Parent", {"id": 1, "name": "p"})
        db.insert("Child", {"id": 10, "parent": 1})

    def test_dangling_reference_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("Child", {"id": 10, "parent": 999})

    def test_null_fk_allowed_when_nullable(self, db):
        db.insert("Child", {"id": 10, "parent": None})

    def test_null_fk_rejected_when_not_nullable(self):
        database = Database()
        database.create_table(TableSchema(
            "P", [Column("id", int)], "id"))
        database.create_table(TableSchema(
            "C", [Column("id", int), Column("p", int)], "id",
            [ForeignKey("p", "P")]))
        with pytest.raises(IntegrityError):
            database.insert("C", {"id": 1})

    def test_insert_many(self, db):
        db.insert("Parent", {"id": 1, "name": "p"})
        count = db.insert_many(
            "Child", iter([{"id": i, "parent": 1} for i in range(5)]))
        assert count == 5
        assert len(db.table("Child")) == 5


class TestStats:
    def test_totals(self, db):
        db.insert("Parent", {"id": 1, "name": "p"})
        db.insert("Child", {"id": 10, "parent": 1})
        db.insert("Child", {"id": 11, "parent": None})
        assert db.total_rows() == 3
        assert db.total_references() == 1
        stats = db.stats()
        assert stats["Parent"] == 1 and stats["Child"] == 2
        assert stats["__total_references__"] == 1

    def test_foreign_key_pairs(self, db):
        db.insert("Parent", {"id": 1, "name": "p"})
        db.insert("Child", {"id": 10, "parent": 1})
        pairs = list(foreign_key_pairs(db))
        assert pairs == [(("Child", 10), ("Parent", 1))]

    def test_composite_pk_in_pairs(self):
        database = Database()
        database.create_table(TableSchema(
            "P", [Column("id", int)], "id"))
        database.create_table(TableSchema(
            "W", [Column("a", int), Column("p", int)], ("a", "p"),
            [ForeignKey("p", "P")]))
        database.insert("P", {"id": 7})
        database.insert("W", {"a": 1, "p": 7})
        assert list(foreign_key_pairs(database)) \
            == [(("W", (1, 7)), ("P", 7))]

    def test_repr(self, db):
        assert "Parent=0" in repr(db)
