"""Every public item in src/repro must carry a docstring."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

from check_docstrings import missing_docstrings  # noqa: E402


def test_public_api_fully_documented():
    problems = missing_docstrings()
    assert problems == [], "\n".join(problems)
