"""Unit tests for WAL compaction (:class:`repro.wal.Compactor`).

Folding must be byte-equivalent to the serving path (same
``apply_delta`` in LSN order), a successful cycle must
checkpoint-then-truncate so replay stays anchored, a failed publish
must leave the WAL intact with the old snapshot serving (sticky
degraded, never an outage), and ``SnapshotStore.prune`` must never
delete a snapshot the WAL still depends on.
"""

import pytest

from repro import faults
from repro.datasets.paper_example import FIG4_RMAX, figure4_graph
from repro.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import FaultInjectedError, WalError
from repro.snapshot import SnapshotStore
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import GraphDelta
from repro.wal import Compactor, WriteAheadLog

SPEC = QuerySpec(keywords=("a", "b", "c"), rmax=FIG4_RMAX)
DELTAS = [GraphDelta(new_edges=[(0, 3, 0.25)]),
          GraphDelta(new_nodes=[({"a"}, "extra", None)],
                     new_edges=[(13, 4, 0.5)])]


@pytest.fixture(autouse=True)
def clean_failpoints():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture()
def store(tmp_path):
    root = tmp_path / "store"
    dbg = figure4_graph()
    index = CommunityIndex.build(dbg, FIG4_RMAX)
    SnapshotStore(root).publish(dbg, index,
                                provenance={"dataset": "fig4"})
    return SnapshotStore(root)


@pytest.fixture()
def wal(tmp_path, store):
    base = store.load("latest", verify=False)
    log = WriteAheadLog(tmp_path / "deltas.wal", fsync="off")
    for delta in DELTAS:
        log.append_delta(delta, base=base.id)
    yield log
    log.close()


def answers(engine):
    return [c.nodes for c in engine.run_all(SPEC)]


class TestCompactOnce:
    def test_folds_and_matches_served_state(self, store, wal):
        base = store.load("latest", verify=False)
        live = QueryEngine.from_snapshot(base.path)
        for lsn, delta in enumerate(DELTAS, start=1):
            live.apply_delta(delta, lsn=lsn)

        new_id = Compactor(wal, store).compact_once()
        assert new_id is not None and new_id != base.id
        folded = QueryEngine.from_snapshot(
            store.load(new_id, verify=True).path)
        assert (folded.dbg.n, folded.dbg.m) \
            == (live.dbg.n, live.dbg.m)
        assert answers(folded) == answers(live)

    def test_checkpoint_then_truncate(self, store, wal):
        new_id = Compactor(wal, store).compact_once()
        records = wal.records()
        # folded deltas are gone; the checkpoint anchor survives
        assert all(r["type"] != "delta" for r in records)
        checkpoints = [r for r in records
                       if r["type"] == "checkpoint"]
        assert checkpoints[-1]["snapshot"] == new_id
        assert checkpoints[-1]["folded"] == 2
        assert wal.pending_count == 0
        # a fresh engine on the new snapshot replays nothing
        engine = QueryEngine.from_snapshot(
            store.load(new_id, verify=False).path, wal_path=wal)
        assert engine.deltas_applied == 0

    def test_provenance_records_fold(self, store, wal):
        base = store.load("latest", verify=False)
        new_id = Compactor(wal, store).compact_once()
        manifest = {m["id"]: m for m in store.list()}[new_id]
        provenance = manifest["provenance"]
        assert provenance["compacted_from"] == base.id
        assert provenance["folded_lsn"] == 2
        assert provenance["deltas"] == 2

    def test_min_deltas_skips_small_backlogs(self, store, wal):
        compactor = Compactor(wal, store, min_deltas=5)
        assert compactor.compact_once() is None
        assert wal.pending_count == 2  # untouched

    def test_min_deltas_must_be_positive(self, store, wal):
        with pytest.raises(ValueError, match="min_deltas"):
            Compactor(wal, store, min_deltas=0)

    def test_no_base_snapshot_is_an_error(self, tmp_path, store):
        log = WriteAheadLog(tmp_path / "anon.wal", fsync="off")
        log.append_delta(DELTAS[0], base=None)
        with pytest.raises(WalError, match="no base snapshot"):
            Compactor(log, store).compact_once()
        log.close()

    def test_hot_swaps_attached_engine(self, store, wal):
        base = store.load("latest", verify=False)
        engine = QueryEngine.from_snapshot(base.path, wal_path=wal)
        assert engine.deltas_applied == 2
        expected = answers(engine)
        new_id = Compactor(wal, store, engine=engine).compact_once()
        assert engine.snapshot_id == new_id
        assert engine.dirty is False  # everything is folded in
        assert answers(engine) == expected


class TestCompactionFailure:
    def test_failed_publish_leaves_wal_and_snapshot_intact(
            self, store, wal):
        base = store.load("latest", verify=False)
        engine = QueryEngine.from_snapshot(base.path, wal_path=wal)
        before = answers(engine)
        faults.activate("compact.publish", "once:raise")
        compactor = Compactor(wal, store, engine=engine)
        with pytest.raises(FaultInjectedError):
            compactor.compact_once()
        # containment: every acknowledged delta still in the WAL,
        # the old snapshot still serving, zero failed queries
        assert wal.pending_count == 2
        assert engine.base_snapshot_id == base.id
        assert answers(engine) == before
        assert {m["id"] for m in store.list()} == {base.id}

    def test_background_loop_goes_sticky_degraded(self, store, wal):
        faults.activate("compact.publish", "always:raise")
        compactor = Compactor(wal, store, interval=0.01)
        compactor.start()
        try:
            deadline_ok = _wait(lambda: compactor.degraded)
            assert deadline_ok
            failures = compactor.failures
            assert failures == 1  # sticky: no retry spam
            _wait(lambda: False, timeout=0.1)
            assert compactor.failures == failures
            assert "FaultInjectedError" in compactor.last_error
            info = compactor.as_dict()
            assert info["degraded"] is True
            assert info["running"] is True
        finally:
            compactor.stop()
        assert wal.pending_count == 2

    def test_manual_compact_clears_backlog_after_degrade(
            self, store, wal):
        faults.activate("compact.publish", "once:raise")
        compactor = Compactor(wal, store)
        with pytest.raises(FaultInjectedError):
            compactor.compact_once()
        # the CLI path: a fresh compactor (failpoint now spent)
        assert Compactor(wal, store).compact_once() is not None
        assert wal.pending_count == 0


class TestPruneProtection:
    def test_prune_spares_wal_base_snapshot(self, tmp_path, store,
                                            wal):
        base = store.load("latest", verify=False)
        # publish enough newer snapshots to push base past keep=1
        dbg = figure4_graph()
        index = CommunityIndex.build(dbg, FIG4_RMAX)
        newer = [store.publish(dbg, index, provenance={"gen": i})
                 for i in range(2)]
        removed = store.prune(keep=1, wal=str(wal.path))
        assert base.id not in removed
        survivors = {m["id"] for m in store.list()}
        assert base.id in survivors
        assert newer[-1].id in survivors  # latest always kept

    def test_prune_without_wal_still_drops_old(self, store, wal):
        base = store.load("latest", verify=False)
        dbg = figure4_graph()
        index = CommunityIndex.build(dbg, FIG4_RMAX)
        for i in range(2):
            store.publish(dbg, index, provenance={"gen": i})
        removed = store.prune(keep=1)
        assert base.id in removed


def _wait(predicate, timeout=10.0, interval=0.01):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
