"""Unit tests for Algorithm 6 graph projection."""

import pytest

from repro.core.naive import naive_all
from repro.core.projection import project
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
    node_id,
)
from repro.exceptions import QueryError
from repro.text.inverted_index import CommunityIndex


@pytest.fixture(scope="module")
def indexed_fig4():
    dbg = figure4_graph()
    return dbg, CommunityIndex.build(dbg, radius=FIG4_RMAX)


class TestProjection:
    def test_projection_contains_all_community_nodes(self, indexed_fig4):
        dbg, index = indexed_fig4
        result = project(index, list(FIG4_QUERY), FIG4_RMAX)
        needed = set()
        for community in naive_all(dbg, list(FIG4_QUERY), FIG4_RMAX):
            needed.update(community.nodes)
        assert needed <= set(result.mapping)

    def test_keyword_postings_translated(self, indexed_fig4):
        dbg, index = indexed_fig4
        result = project(index, list(FIG4_QUERY), FIG4_RMAX)
        for position, keyword in enumerate(FIG4_QUERY):
            for new in result.node_lists[position]:
                original = result.to_original(new)
                assert keyword in dbg.keywords_of(original)

    def test_fraction(self, indexed_fig4):
        dbg, index = indexed_fig4
        result = project(index, list(FIG4_QUERY), FIG4_RMAX)
        assert 0.0 < result.fraction_of(dbg) <= 1.0
        assert result.n <= result.union_nodes

    def test_projection_excludes_irrelevant_nodes(self, indexed_fig4):
        dbg, index = indexed_fig4
        # with a small Rmax only tight neighborhoods survive
        result = project(index, ["a", "b"], 3.0)
        assert result.n < dbg.n

    def test_rmax_above_index_radius_rejected(self, indexed_fig4):
        _, index = indexed_fig4
        with pytest.raises(QueryError):
            project(index, list(FIG4_QUERY), FIG4_RMAX + 1.0)

    def test_empty_query_rejected(self, indexed_fig4):
        _, index = indexed_fig4
        with pytest.raises(QueryError):
            project(index, [], FIG4_RMAX)

    def test_negative_rmax_rejected(self, indexed_fig4):
        _, index = indexed_fig4
        with pytest.raises(QueryError):
            project(index, ["a"], -1.0)

    def test_unknown_keyword_empty_projection(self, indexed_fig4):
        _, index = indexed_fig4
        result = project(index, ["a", "doesnotexist"], FIG4_RMAX)
        assert result.n == 0

    def test_labels_carried_over(self, indexed_fig4):
        dbg, index = indexed_fig4
        result = project(index, list(FIG4_QUERY), FIG4_RMAX)
        v4_new = result.mapping[node_id("v4")]
        assert result.subgraph.label_of(v4_new) == "v4"

    def test_smaller_rmax_smaller_projection(self, indexed_fig4):
        _, index = indexed_fig4
        big = project(index, list(FIG4_QUERY), 8.0)
        small = project(index, list(FIG4_QUERY), 5.0)
        assert small.n <= big.n
