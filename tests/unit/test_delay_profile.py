"""Unit tests for the per-answer delay profiler."""

import math

from repro.analysis.delay_profile import DelayProfile, profile_delays
from repro.core.comm_all import enumerate_all
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX


class TestDelayProfile:
    def test_profile_of_real_enumeration(self, fig4):
        profile = profile_delays(
            enumerate_all(fig4, list(FIG4_QUERY), FIG4_RMAX))
        assert profile.answers == 5
        assert len(profile.delays_ms) == 5
        assert profile.total_seconds > 0
        assert profile.average_ms > 0
        assert profile.max_ms >= profile.percentile_ms(50)

    def test_max_answers_cap(self, fig4):
        profile = profile_delays(
            enumerate_all(fig4, list(FIG4_QUERY), FIG4_RMAX),
            max_answers=2)
        assert profile.answers == 2

    def test_empty_iterator(self):
        profile = profile_delays(iter(()))
        assert profile.answers == 0
        assert math.isnan(profile.average_ms)
        assert math.isnan(profile.max_ms)
        assert math.isnan(profile.drift_ratio)

    def test_percentiles_monotone(self):
        profile = DelayProfile(5, 1.0, [1.0, 2.0, 3.0, 4.0, 5.0])
        assert profile.percentile_ms(0) == 1.0
        assert profile.percentile_ms(50) == 3.0
        assert profile.percentile_ms(100) == 5.0

    def test_drift_ratio_flat(self):
        profile = DelayProfile(6, 1.0, [2.0] * 6)
        assert profile.drift_ratio == 1.0

    def test_drift_ratio_growing(self):
        profile = DelayProfile(6, 1.0, [1.0, 1.0, 1.0, 3.0, 3.0, 3.0])
        assert profile.drift_ratio == 3.0

    def test_render_mentions_everything(self):
        profile = DelayProfile(4, 0.1, [10.0, 20.0, 30.0, 40.0])
        text = profile.render()
        assert "4 answers" in text and "drift" in text
