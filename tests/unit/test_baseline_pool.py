"""Unit tests for the baseline pools (dedup + top-k pruning)."""

import pytest

from repro.core.baselines.pool import BaselineStats, DedupPool, TopKPool
from repro.exceptions import QueryError


class TestDedupPool:
    def test_admit_once(self):
        pool = DedupPool()
        assert pool.admit((1, 2))
        assert not pool.admit((1, 2))
        assert pool.admit((2, 1))
        assert len(pool) == 2
        assert (1, 2) in pool

    def test_stats_track_duplicates_and_peak(self):
        stats = BaselineStats()
        pool = DedupPool(stats)
        pool.admit((1,))
        pool.admit((1,))
        pool.admit((2,))
        assert stats.candidates == 3
        assert stats.duplicates == 1
        assert stats.pool_peak == 2


class TestTopKPool:
    def test_k_validation(self):
        with pytest.raises(QueryError):
            TopKPool(0)

    def test_keeps_k_smallest(self):
        pool = TopKPool(2)
        for core, cost in [((1,), 5.0), ((2,), 1.0), ((3,), 3.0)]:
            pool.offer(core, cost)
        assert pool.results() == [((2,), 1.0), ((3,), 3.0)]

    def test_duplicate_core_keeps_min_cost(self):
        pool = TopKPool(3)
        pool.offer((1,), 5.0)
        pool.offer((1,), 2.0)
        pool.offer((1,), 9.0)
        assert pool.results() == [((1,), 2.0)]

    def test_prunes_above_threshold(self):
        pool = TopKPool(1)
        pool.offer((1,), 1.0)
        pool.offer((2,), 50.0)  # pruned: worse than current best
        assert len(pool) == 1

    def test_compaction_preserves_correctness(self):
        pool = TopKPool(3)
        for i in range(100):
            pool.offer((i,), float(100 - i))
        assert [cost for _, cost in pool.results()] == [1.0, 2.0, 3.0]
        assert len(pool) <= 6  # 2k bound

    def test_tie_break_by_core(self):
        pool = TopKPool(2)
        pool.offer((5,), 1.0)
        pool.offer((1,), 1.0)
        pool.offer((3,), 1.0)
        assert pool.results() == [((1,), 1.0), ((3,), 1.0)]

    def test_late_better_center_for_dropped_core(self):
        # a core pruned via a bad center must win via a good one
        pool = TopKPool(1)
        pool.offer((1,), 1.0)
        pool.offer((2,), 10.0)   # pruned
        pool.offer((2,), 0.5)    # better center, now best
        assert pool.results() == [((2,), 0.5)]

    def test_stats(self):
        stats = BaselineStats()
        pool = TopKPool(2, stats)
        pool.offer((1,), 1.0)
        pool.offer((1,), 2.0)
        assert stats.candidates == 2
        assert stats.duplicates == 1
