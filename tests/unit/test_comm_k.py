"""Unit tests for PDk (Algorithm 5) and the interactive stream."""

import pytest

from repro.core.comm_k import CanTuple, TopKStream, top_k
from repro.core.naive import naive_all
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.exceptions import QueryError


class TestTopK:
    def test_fig4_ranked_order(self, fig4):
        results = top_k(fig4, list(FIG4_QUERY), 5, FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0, 14.0,
                                             15.0]

    def test_k_larger_than_output(self, fig4):
        results = top_k(fig4, list(FIG4_QUERY), 100, FIG4_RMAX)
        assert len(results) == 5

    def test_k_validation(self, fig4):
        with pytest.raises(QueryError):
            top_k(fig4, ["a"], 0, FIG4_RMAX)
        with pytest.raises(QueryError):
            top_k(fig4, ["a"], -3, FIG4_RMAX)

    def test_costs_non_decreasing(self, fig4):
        results = top_k(fig4, list(FIG4_QUERY), 5, FIG4_RMAX)
        costs = [c.cost for c in results]
        assert costs == sorted(costs)

    def test_matches_naive_prefix(self, fig4):
        ref = naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX)
        got = top_k(fig4, list(FIG4_QUERY), 3, FIG4_RMAX)
        assert [c.cost for c in got] == [c.cost for c in ref[:3]]

    def test_no_duplicate_cores(self, fig4):
        results = top_k(fig4, list(FIG4_QUERY), 100, FIG4_RMAX)
        cores = [c.core for c in results]
        assert len(cores) == len(set(cores))


class TestStream:
    def test_incremental_take(self, fig4):
        stream = TopKStream(fig4, list(FIG4_QUERY), FIG4_RMAX)
        first = stream.take(2)
        rest = stream.more(10)
        assert [c.cost for c in first + rest] == [7.0, 10.0, 11.0,
                                                  14.0, 15.0]
        assert stream.exhausted
        assert stream.emitted == 5

    def test_next_community_none_when_done(self, fig4):
        stream = TopKStream(fig4, list(FIG4_QUERY), FIG4_RMAX)
        stream.take(5)
        assert stream.next_community() is None

    def test_iteration_protocol(self, fig4):
        stream = TopKStream(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert len(list(stream)) == 5

    def test_take_zero(self, fig4):
        stream = TopKStream(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert stream.take(0) == []
        assert not stream.exhausted

    def test_take_negative_rejected(self, fig4):
        stream = TopKStream(fig4, list(FIG4_QUERY), FIG4_RMAX)
        with pytest.raises(QueryError):
            stream.take(-1)

    def test_empty_result_stream(self, fig4):
        stream = TopKStream(fig4, ["a", "missing"], FIG4_RMAX)
        assert stream.exhausted
        assert stream.next_community() is None

    def test_negative_rmax_rejected(self, fig4):
        with pytest.raises(QueryError):
            TopKStream(fig4, ["a"], -1.0)


class TestCanTuple:
    def test_repr(self):
        g = CanTuple((1, 2), 3.5, 0, None)
        assert "core=(1, 2)" in repr(g)
        assert "cost=3.5" in repr(g)

    def test_prev_chain(self):
        root = CanTuple((1, 2), 1.0, 0, None)
        child = CanTuple((1, 3), 2.0, 1, root)
        assert child.prev is root
        assert root.prev is None
