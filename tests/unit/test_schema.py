"""Unit tests for relational schema objects."""

import pytest

from repro.exceptions import SchemaError
from repro.rdb.schema import Column, ForeignKey, TableSchema


class TestColumn:
    def test_valid_column(self):
        col = Column("name", str)
        assert col.validate("x") == "x"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("9bad", str)
        with pytest.raises(SchemaError):
            Column("", str)

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("c", list)

    def test_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Column("c", int).validate("7")

    def test_int_coerces_to_float(self):
        assert Column("c", float).validate(3) == 3.0

    def test_bool_not_coerced_to_float(self):
        with pytest.raises(SchemaError):
            Column("c", float).validate(True)

    def test_nullable(self):
        assert Column("c", str, nullable=True).validate(None) is None
        with pytest.raises(SchemaError):
            Column("c", str).validate(None)


class TestForeignKey:
    def test_requires_column_and_table(self):
        with pytest.raises(SchemaError):
            ForeignKey("", "T")
        with pytest.raises(SchemaError):
            ForeignKey("c", "")

    def test_defaults(self):
        fk = ForeignKey("c", "T")
        assert fk.ref_column is None


class TestTableSchema:
    def make(self, **kwargs):
        defaults = dict(
            name="T",
            columns=[Column("id", int), Column("txt", str)],
            primary_key="id",
        )
        defaults.update(kwargs)
        return TableSchema(**defaults)

    def test_single_column_pk_string_form(self):
        schema = self.make()
        assert schema.primary_key == ("id",)

    def test_composite_pk(self):
        schema = TableSchema(
            "W", [Column("a", int), Column("b", int)], ("a", "b"))
        assert schema.primary_key == ("a", "b")

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [], "id")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [Column("a", int), Column("a", str)], "a")

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            self.make(primary_key="nope")

    def test_nullable_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [Column("id", int, nullable=True)], "id")

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            self.make(foreign_keys=[ForeignKey("nope", "T")])

    def test_text_column_must_exist_and_be_str(self):
        with pytest.raises(SchemaError):
            self.make(text_columns=["nope"])
        with pytest.raises(SchemaError):
            self.make(text_columns=["id"])

    def test_column_lookup(self):
        schema = self.make()
        assert schema.column("txt").type is str
        assert schema.column_index("txt") == 1
        with pytest.raises(SchemaError):
            schema.column("missing")
        assert schema.column_names == ("id", "txt")

    def test_bad_table_name(self):
        with pytest.raises(SchemaError):
            self.make(name="bad name")
