"""Unit tests for the benchmark harness (on the tiny scale)."""

import pytest

from repro.bench.harness import (
    RunResult,
    measure_all,
    measure_interactive,
    measure_topk,
)
from repro.bench.reporting import counts_note, format_table, series_table
from repro.bench.workloads import (
    DBLP_PARAMS,
    IMDB_PARAMS,
    load_dataset,
)
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def fig4_search():
    dbg = figure4_graph()
    search = CommunitySearch(dbg)
    search.build_index(radius=FIG4_RMAX)
    return search


class TestParams:
    def test_paper_table2_table4_grids(self):
        assert DBLP_PARAMS.rmax_values == (4.0, 5.0, 6.0, 7.0, 8.0)
        assert IMDB_PARAMS.rmax_values == (9.0, 10.0, 11.0, 12.0, 13.0)
        for params in (DBLP_PARAMS, IMDB_PARAMS):
            assert params.k_values == (50, 100, 150, 200, 250)
            assert params.l_values == (2, 3, 4, 5, 6)
            assert params.default_kwf == 0.0009
            assert params.default_l == 4
            assert params.default_k == 150

    def test_default_rmax_matches_paper(self):
        assert DBLP_PARAMS.default_rmax == 6.0
        assert IMDB_PARAMS.default_rmax == 11.0

    def test_query_helper(self):
        assert len(DBLP_PARAMS.query()) == 4
        assert len(DBLP_PARAMS.query(l=2)) == 2

    def test_unknown_dataset_rejected(self):
        with pytest.raises(QueryError):
            load_dataset("oracle", "bench")


class TestMeasurement:
    def test_measure_all(self, fig4_search):
        result = measure_all(fig4_search, "fig4", list(FIG4_QUERY),
                             FIG4_RMAX, "pd")
        assert result.communities == 5
        assert result.seconds > 0
        assert result.avg_delay_ms > 0
        assert result.peak_kb is not None and result.peak_kb > 0
        assert not result.capped

    def test_measure_all_capped(self, fig4_search):
        result = measure_all(fig4_search, "fig4", list(FIG4_QUERY),
                             FIG4_RMAX, "pd", max_communities=2)
        assert result.communities == 2
        assert result.capped

    def test_measure_all_skips_memory_on_request(self, fig4_search):
        result = measure_all(fig4_search, "fig4", list(FIG4_QUERY),
                             FIG4_RMAX, "bu", measure_memory=False)
        assert result.peak_kb is None

    def test_measure_topk(self, fig4_search):
        result = measure_topk(fig4_search, "fig4", list(FIG4_QUERY),
                              3, FIG4_RMAX, "pd")
        assert result.communities == 3
        assert result.k == 3
        assert result.mode == "topk"

    def test_measure_interactive_pd_and_baselines(self, fig4_search):
        pd = measure_interactive(fig4_search, "fig4",
                                 list(FIG4_QUERY), 2, FIG4_RMAX, "pd",
                                 extra_k=2)
        assert pd.communities == 4
        bu = measure_interactive(fig4_search, "fig4",
                                 list(FIG4_QUERY), 2, FIG4_RMAX, "bu",
                                 extra_k=2)
        assert bu.communities == 4

    def test_measure_interactive_validates_algorithm(self, fig4_search):
        with pytest.raises(QueryError):
            measure_interactive(fig4_search, "fig4", ["a"], 2,
                                FIG4_RMAX, "naive")

    def test_avg_delay_nan_when_empty(self):
        result = RunResult("d", "pd", "all", ["x"], 1.0, 0.5, 0)
        assert result.avg_delay_ms != result.avg_delay_ms  # NaN


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["x", "y"], [[1, 2.0], [10, 3.14159]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "3.142" in text

    def test_series_table(self):
        runs = {
            "pd": [RunResult("d", "pd", "all", ["x"], 1.0, 0.5, 5)],
            "bu": [RunResult("d", "bu", "all", ["x"], 1.0, 1.0, 5)],
        }
        text = series_table("T", "kwf", [0.0009], runs,
                            metric="seconds", unit="s")
        assert "T" in text and "pd[s]" in text and "bu[s]" in text

    def test_counts_note_marks_caps(self):
        runs = {"pd": [RunResult("d", "pd", "all", ["x"], 1.0, 0.5, 5,
                                 capped=True)]}
        assert "5+" in counts_note(runs)
