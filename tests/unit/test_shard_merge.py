"""Merge-algebra unit tests: globalize, filter, union, exact top-k."""

from repro.core.community import Community
from repro.shard import (
    FetchResult,
    fetch_many_from,
    filter_owned,
    globalize,
    merge_all,
    merge_top_k,
)


def _comm(core, cost):
    """A minimal community over its own core nodes."""
    core = tuple(sorted(core))
    return Community(core=core, cost=float(cost), centers=core[:1],
                     pnodes=core, nodes=core, edges=())


# ----------------------------------------------------------------------
# globalize / filter_owned / merge_all
# ----------------------------------------------------------------------
def test_globalize_relabels_through_node_map():
    node_map = [4, 7, 9]                 # local 0,1,2 -> global 4,7,9
    out = globalize([_comm((0, 2), 3.0)], node_map)
    assert out[0].core == (4, 9)
    assert out[0].cost == 3.0


def test_filter_owned_keeps_anchored_answers_in_order():
    owners = [0, 0, 1, 1]
    answers = [_comm((0, 2), 1.0), _comm((2, 3), 2.0),
               _comm((1, 3), 3.0)]
    kept = filter_owned(answers, owners, 0)
    assert [c.core for c in kept] == [(0, 2), (1, 3)]
    kept1 = filter_owned(answers, owners, 1)
    assert [c.core for c in kept1] == [(2, 3)]


def test_merge_all_sorts_by_cost_then_core():
    merged = merge_all([
        [_comm((1, 2), 5.0), _comm((0, 3), 2.0)],
        [_comm((0, 2), 5.0)],
    ])
    assert [c.core for c in merged] == [(0, 3), (0, 2), (1, 2)]


def test_merge_all_drops_duplicate_cores():
    merged = merge_all([[_comm((0, 1), 2.0)], [_comm((0, 1), 2.0)]])
    assert len(merged) == 1


# ----------------------------------------------------------------------
# merge_top_k
# ----------------------------------------------------------------------
def _shard(stream, owners, shard_id, node_map=None):
    """A fetch function replaying one shard's cost-ordered stream."""
    def fetch(want):
        raw = stream[:want]
        exhausted = len(raw) < want
        frontier = raw[-1].cost if raw and not exhausted else None
        kept = filter_owned(raw, owners, shard_id)
        return FetchResult(kept=kept, raw_count=len(raw),
                           exhausted=exhausted, frontier=frontier)
    return fetch


def test_merge_top_k_exact_across_two_shards():
    owners = [0, 0, 1, 1]
    s0 = [_comm((0,), 1.0), _comm((2,), 2.0), _comm((1,), 5.0)]
    s1 = [_comm((2,), 2.0), _comm((3,), 3.0)]
    shards = {0: _shard(s0, owners, 0), 1: _shard(s1, owners, 1)}
    out = merge_top_k(
        fetch_many_from(lambda s, w: shards[s](w)), [0, 1], 3)
    assert [c.core for c in out.communities] == [(0,), (2,), (3,)]
    assert [c.cost for c in out.communities] == [1.0, 2.0, 3.0]
    assert out.answered == [0, 1]
    assert out.failed == []


def test_merge_top_k_overfetches_past_filtered_prefix():
    """Shard 0's stream starts with k answers it does not own; the
    driver must refetch deeper instead of declaring it empty."""
    owners = [0, 1]
    s0 = ([_comm((1,), float(i)) for i in range(1, 5)]    # unowned
          + [_comm((0,), 9.0)])                            # owned
    s1 = [_comm((1,), float(i)) for i in range(1, 5)]
    shards = {0: _shard(s0, owners, 0), 1: _shard(s1, owners, 1)}
    out = merge_top_k(
        fetch_many_from(lambda s, w: shards[s](w)), [0, 1], 5)
    assert [c.cost for c in out.communities] == [1, 2, 3, 4, 9.0]
    assert out.rounds > 1
    assert out.fetch_sizes[0] > 5


def test_merge_top_k_boundary_tie_forces_refetch():
    """A non-exhausted shard whose frontier equals the merged k-th
    cost may hide an equal-cost answer with a smaller core — the
    driver refetches until the frontier strictly clears."""
    owners = [0, 1]
    s0 = [_comm((0,), 2.0)]
    # shard 1's first answer ties at cost 2.0 with a smaller core,
    # but sits behind an unowned prefix entry.
    s1 = [_comm((0,), 1.0), _comm((1,), 2.0)]
    shards = {0: _shard(s0, owners, 0), 1: _shard(s1, owners, 1)}
    out = merge_top_k(
        fetch_many_from(lambda s, w: shards[s](w)), [0, 1], 1)
    # core (1,) costs 2.0 == core (0,)'s 2.0; (0,) sorts first but
    # only appears once shard 1 is fetched past its unowned prefix.
    assert out.communities[0].core == (0,)


def test_merge_top_k_failed_shard_reported_not_fatal():
    owners = [0, 1]
    s0 = [_comm((0,), 1.0)]
    def fetch(shard_id, want):
        if shard_id == 1:
            return None                  # crashed / timed out
        return _shard(s0, owners, 0)(want)
    out = merge_top_k(fetch_many_from(fetch), [0, 1], 2)
    assert out.failed == [1]
    assert out.answered == [0]
    assert [c.core for c in out.communities] == [(0,)]


def test_merge_top_k_no_shards():
    out = merge_top_k(fetch_many_from(lambda s, w: None), [], 3)
    assert out.communities == []
    assert out.rounds == 1


def test_merge_top_k_round_cap_sets_truncated():
    owners = [0]
    def never_enough(shard_id, want):
        # Non-exhausted stream whose frontier never clears: all
        # answers unowned... except nothing is ever owned, so the
        # merged top never fills and the driver keeps doubling.
        raw = [_comm((0,), 1.0)] * want
        return FetchResult(kept=[], raw_count=want, exhausted=False,
                           frontier=1.0)
    out = merge_top_k(fetch_many_from(never_enough), [0], 2,
                      max_rounds=3)
    assert out.truncated
    assert out.rounds == 3


def test_fetch_many_adapter_passes_wants_through():
    seen = {}
    def fetch(shard_id, want):
        seen[shard_id] = want
        return FetchResult(kept=[], raw_count=0, exhausted=True)
    fan = fetch_many_from(fetch)
    results = fan({0: 5, 1: 7})
    assert seen == {0: 5, 1: 7}
    assert set(results) == {0, 1}
