"""Unit tests for the baseline time budget (Deadline / censoring)."""

from repro.core.baselines import BaselineStats, bu_top_k, td_top_k
from repro.core.baselines.pool import Deadline
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
)


class TestDeadline:
    def test_none_never_expires(self):
        deadline = Deadline(None, stride=1)
        assert not any(deadline.check() for _ in range(1000))

    def test_zero_budget_expires(self):
        deadline = Deadline(0.0, stride=1)
        assert deadline.check()
        assert deadline.expired

    def test_stride_batches_clock_reads(self):
        # an already-passed (but positive) deadline is only noticed on
        # the stride-th call
        deadline = Deadline(1e-9, stride=10)
        for _ in range(9):
            assert not deadline.check()
        assert deadline.check()

    def test_check_now_reads_clock_immediately(self):
        deadline = Deadline(1e-9, stride=10)
        assert deadline.check_now()

    def test_expired_is_sticky(self):
        deadline = Deadline(0.0, stride=1)
        deadline.check()
        assert deadline.check()


class TestCensoredRuns:
    def test_generous_budget_is_complete(self, fig4):
        stats = BaselineStats()
        results = bu_top_k(fig4, list(FIG4_QUERY), 10, FIG4_RMAX,
                           stats=stats, budget_seconds=60.0)
        assert len(results) == 5
        assert "timed_out" not in stats.extra

    def test_zero_budget_is_censored(self, fig4):
        for runner in (bu_top_k, td_top_k):
            stats = BaselineStats()
            results = runner(fig4, list(FIG4_QUERY), 10, FIG4_RMAX,
                             stats=stats, budget_seconds=0.0)
            assert stats.extra.get("timed_out") == 1.0
            # censored results are a (possibly empty) partial answer
            assert len(results) <= 5

    def test_default_no_budget_unchanged(self, fig4):
        results = bu_top_k(fig4, list(FIG4_QUERY), 10, FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0, 14.0,
                                             15.0]
