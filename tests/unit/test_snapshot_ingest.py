"""Cross-box snapshot ingest: verify-every-byte, stage, commit.

:class:`~repro.snapshot.store.SnapshotIngest` is the receiving half
of the no-shared-filesystem transfer path. These tests drive it with
real published artifacts: a faithful re-feed commits and verifies, a
flipped byte is rejected *before* staging touches the store, and a
torn transfer (missing sections, abort) never becomes visible.
"""

import pytest

from repro.datasets.paper_example import FIG4_RMAX
from repro.exceptions import (
    SnapshotFormatError,
    SnapshotIntegrityError,
)
from repro.snapshot import (
    MANIFEST_NAME,
    SnapshotStore,
    load_snapshot,
    read_manifest,
)
from repro.service.http import SnapshotTransfer, snapshot_store_of
from repro.text.inverted_index import CommunityIndex


@pytest.fixture()
def published(fig4, tmp_path):
    """A real snapshot in a source store: (snapshot, manifest, dir)."""
    index = CommunityIndex.build(fig4, FIG4_RMAX)
    snapshot = SnapshotStore(tmp_path / "source").publish(
        fig4, index, provenance={"dataset": "fig4"})
    manifest = read_manifest(snapshot.path)
    return snapshot, manifest, snapshot.path


def _sections(manifest, snapshot_dir):
    """Each section's wire bytes, keyed by section name."""
    return {name: (snapshot_dir / entry["file"]).read_bytes()
            for name, entry in manifest["sections"].items()}


class TestSnapshotIngest:
    def test_full_transfer_commits_and_verifies(self, published,
                                                tmp_path):
        snapshot, manifest, src = published
        store = SnapshotStore(tmp_path / "dest")
        ingest = store.ingest(manifest)
        assert ingest.sections_needed == sorted(manifest["sections"])
        for name, wire in _sections(manifest, src).items():
            ingest.write_section(name, wire)
        final = ingest.commit()
        assert final == store.root / snapshot.id
        assert store.latest_id() == snapshot.id
        # Checksum-verified load proves byte-for-byte fidelity.
        loaded = load_snapshot(final, verify=True)
        assert loaded.id == snapshot.id

    def test_corrupt_section_rejected_but_resendable(self, published,
                                                     tmp_path):
        _, manifest, src = published
        ingest = SnapshotStore(tmp_path / "dest").ingest(manifest)
        sections = _sections(manifest, src)
        name = sorted(sections)[0]
        damaged = bytearray(sections[name])
        damaged[len(damaged) // 2] ^= 0xFF
        with pytest.raises(SnapshotIntegrityError,
                           match="corrupt|checksum|truncated"):
            ingest.write_section(name, bytes(damaged))
        # The ingest stays open: re-sending the honest bytes works.
        assert name in ingest.sections_needed
        for section, wire in sections.items():
            ingest.write_section(section, wire)
        ingest.commit()

    def test_unknown_section_rejected(self, published, tmp_path):
        _, manifest, _ = published
        ingest = SnapshotStore(tmp_path / "dest").ingest(manifest)
        with pytest.raises(SnapshotFormatError, match="no 'bogus'"):
            ingest.write_section("bogus", b"payload")

    def test_tampered_manifest_id_rejected(self, published,
                                           tmp_path):
        _, manifest, _ = published
        forged = dict(manifest)
        forged["id"] = "sn-000000000000"
        with pytest.raises(SnapshotFormatError,
                           match="does not match"):
            SnapshotStore(tmp_path / "dest").ingest(forged)

    def test_commit_requires_every_section(self, published,
                                           tmp_path):
        _, manifest, src = published
        store = SnapshotStore(tmp_path / "dest")
        ingest = store.ingest(manifest)
        sections = _sections(manifest, src)
        first = sorted(sections)[0]
        ingest.write_section(first, sections[first])
        with pytest.raises(SnapshotIntegrityError,
                           match="missing sections"):
            ingest.commit()

    def test_abort_discards_staging_idempotently(self, published,
                                                 tmp_path):
        _, manifest, src = published
        store = SnapshotStore(tmp_path / "dest")
        ingest = store.ingest(manifest)
        sections = _sections(manifest, src)
        first = sorted(sections)[0]
        ingest.write_section(first, sections[first])
        ingest.abort()
        ingest.abort()        # idempotent
        # Nothing visible: no snapshot dirs, no hidden staging.
        leftovers = [child for child in store.root.iterdir()]
        assert leftovers == []
        with pytest.raises(SnapshotIntegrityError,
                           match="already closed"):
            ingest.write_section(first, sections[first])


class TestSnapshotTransferBegin:
    def test_repush_of_held_content_is_complete(self, published,
                                                tmp_path):
        snapshot, manifest, src = published
        transfer = SnapshotTransfer(tmp_path / "dest")
        begin = transfer.begin({"manifest": manifest})
        assert begin["complete"] is False
        for name in begin["sections_needed"]:
            entry = manifest["sections"][name]
            transfer.receive(snapshot.id, name,
                             (src / entry["file"]).read_bytes())
        transfer.commit(snapshot.id)
        # Second push of identical content short-circuits.
        again = transfer.begin({"manifest": manifest})
        assert again == {"snapshot": snapshot.id, "complete": True,
                         "sections_needed": []}

    def test_begin_rejects_non_manifest_body(self, tmp_path):
        transfer = SnapshotTransfer(tmp_path / "dest")
        from repro.service.errors import BadRequest
        with pytest.raises(BadRequest, match="manifest"):
            transfer.begin({"manifest": "not-a-dict"})


class TestSnapshotStoreOf:
    def test_none_stays_none(self):
        assert snapshot_store_of(None) is None

    def test_snapshot_dir_implies_parent_store(self, published):
        snapshot, _, src = published
        assert snapshot_store_of(src) == src.parent
        assert (src / MANIFEST_NAME).is_file()

    def test_store_root_is_itself(self, published, tmp_path):
        snapshot, _, src = published
        assert snapshot_store_of(src.parent) == src.parent
        bare = tmp_path / "fresh-store"
        assert snapshot_store_of(bare) == bare
