"""Edge-case and guard-rail tests across modules."""

import pytest

from repro.bench.workloads import clear_cache, load_dataset
from repro.core.naive import naive_cores
from repro.exceptions import QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph


def complete_keyword_graph(n: int, keywords) -> DatabaseGraph:
    """Complete digraph where every node carries every keyword."""
    g = DiGraph(n)
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v, 1.0)
    return DatabaseGraph(g.compile(), [set(keywords)] * n)


class TestExplosionGuards:
    def test_naive_refuses_huge_products(self):
        # 40 keyword nodes x 4 keywords = 2.56M cores per center
        dbg = complete_keyword_graph(40, ["a", "b", "c", "d"])
        with pytest.raises(QueryError):
            naive_cores(dbg, ["a", "b", "c", "d"], rmax=5.0)

    def test_bu_refuses_huge_products(self):
        from repro.core.baselines import bu_all
        dbg = complete_keyword_graph(40, ["a", "b", "c", "d"])
        with pytest.raises(QueryError):
            bu_all(dbg, ["a", "b", "c", "d"], rmax=5.0)

    def test_td_refuses_huge_products(self):
        from repro.core.baselines import td_all
        dbg = complete_keyword_graph(40, ["a", "b", "c", "d"])
        with pytest.raises(QueryError):
            td_all(dbg, ["a", "b", "c", "d"], rmax=5.0)

    def test_pd_handles_the_same_graph_fine(self):
        # the point of polynomial delay: no product enumeration
        from repro.core.comm_all import enumerate_all
        dbg = complete_keyword_graph(40, ["a", "b", "c", "d"])
        stream = enumerate_all(dbg, ["a", "b", "c", "d"], rmax=5.0)
        first = [next(stream) for _ in range(5)]
        assert len(first) == 5
        # Algorithm 1 guarantees the first answer is the best core
        # (a node carrying all four keywords, centered at itself);
        # later answers follow depth-first order
        assert first[0].cost == 0.0
        cores = [c.core for c in first]
        assert len(cores) == len(set(cores))


class TestWorkloadCache:
    def test_cache_returns_same_bundle(self):
        first = load_dataset("dblp", "tiny")
        second = load_dataset("dblp", "tiny")
        assert first is second

    def test_clear_cache_regenerates(self):
        first = load_dataset("dblp", "tiny")
        clear_cache()
        second = load_dataset("dblp", "tiny")
        assert first is not second
        assert first.dbg.n == second.dbg.n  # deterministic generator


class TestEmptyAndDegenerate:
    def test_empty_graph_queries(self):
        dbg = DatabaseGraph(DiGraph(0).compile(), [])
        from repro.core.comm_all import all_communities
        assert all_communities(dbg, ["a"], 5.0) == []

    def test_isolated_keyword_nodes(self):
        # two keywords on disconnected nodes: no community
        g = DiGraph(2)
        dbg = DatabaseGraph(g.compile(), [{"a"}, {"b"}])
        from repro.core.comm_all import all_communities
        from repro.core.comm_k import top_k
        assert all_communities(dbg, ["a", "b"], 100.0) == []
        assert top_k(dbg, ["a", "b"], 5, 100.0) == []

    def test_self_core_when_one_node_has_both(self):
        g = DiGraph(1)
        dbg = DatabaseGraph(g.compile(), [{"a", "b"}])
        from repro.core.comm_all import all_communities
        results = all_communities(dbg, ["a", "b"], 0.0)
        assert [c.core for c in results] == [(0, 0)]
        assert results[0].centers == (0,)

    def test_zero_weight_cycle(self):
        g = DiGraph(2)
        g.add_bidirected_edge(0, 1, 0.0, 0.0)
        dbg = DatabaseGraph(g.compile(), [{"a"}, {"b"}])
        from repro.core.comm_k import top_k
        results = top_k(dbg, ["a", "b"], 5, 0.0)
        # both nodes are centers at distance 0
        assert results and results[0].cost == 0.0
        assert set(results[0].centers) == {0, 1}
