"""Unit tests for the BU/TD expanding baselines."""

import pytest

from repro.core.baselines import (
    BaselineStats,
    bu_all,
    bu_iter,
    bu_top_k,
    td_all,
    td_iter,
    td_top_k,
)
from repro.core.baselines.bottom_up import expand_from_keywords
from repro.core.naive import naive_all
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.exceptions import QueryError
from repro.graph.generators import line_database_graph


class TestExpansion:
    def test_reach_table_structure(self, fig4):
        reach = expand_from_keywords(fig4, list(FIG4_QUERY), FIG4_RMAX)
        # node v4 (id 3) contains 'a' and reaches v8 and v6
        entry = reach[3]
        assert 3 in entry[0]          # itself for keyword a
        assert entry[0][3] == 0.0
        assert 7 in entry[1]          # v8 for keyword b
        assert 5 in entry[2]          # v6 for keyword c

    def test_negative_rmax_rejected(self, fig4):
        with pytest.raises(QueryError):
            expand_from_keywords(fig4, ["a"], -1.0)

    def test_stats_expansions_counted(self, fig4):
        stats = BaselineStats()
        expand_from_keywords(fig4, list(FIG4_QUERY), FIG4_RMAX,
                             stats=stats)
        # one reverse Dijkstra per keyword node: 2 + 2 + 4
        assert stats.expansions == 8


class TestAgainstNaive:
    def test_bu_matches_naive_on_fig4(self, fig4):
        ref = {(c.core, c.cost) for c in
               naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX)}
        got = {(c.core, c.cost) for c in
               bu_all(fig4, list(FIG4_QUERY), FIG4_RMAX)}
        assert got == ref

    def test_td_matches_naive_on_fig4(self, fig4):
        ref = {(c.core, c.cost) for c in
               naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX)}
        got = {(c.core, c.cost) for c in
               td_all(fig4, list(FIG4_QUERY), FIG4_RMAX)}
        assert got == ref

    def test_duplication_free(self, fig4):
        for runner in (bu_all, td_all):
            cores = [c.core for c in
                     runner(fig4, list(FIG4_QUERY), FIG4_RMAX)]
            assert len(cores) == len(set(cores))

    def test_iterators_stream(self, fig4):
        it = bu_iter(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert next(it) is not None
        it = td_iter(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert next(it) is not None


class TestTopKVariants:
    def test_bu_top_k_ranked(self, fig4):
        results = bu_top_k(fig4, list(FIG4_QUERY), 3, FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0]

    def test_td_top_k_ranked(self, fig4):
        results = td_top_k(fig4, list(FIG4_QUERY), 3, FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0]

    def test_k_exceeds_output(self, fig4):
        assert len(bu_top_k(fig4, list(FIG4_QUERY), 99, FIG4_RMAX)) == 5
        assert len(td_top_k(fig4, list(FIG4_QUERY), 99, FIG4_RMAX)) == 5

    def test_k_validation(self, fig4):
        with pytest.raises(QueryError):
            bu_top_k(fig4, ["a"], 0, FIG4_RMAX)
        with pytest.raises(QueryError):
            td_top_k(fig4, ["a"], 0, FIG4_RMAX)


class TestStatsStory:
    def test_duplicates_happen_with_multiple_centers(self):
        # two centers see the same core -> at least one duplicate
        dbg = line_database_graph([1.0, 1.0, 1.0],
                                  [{"a"}, set(), set(), {"b"}])
        stats = BaselineStats()
        bu_all(dbg, ["a", "b"], 10.0, stats=stats)
        assert stats.candidates > stats.candidates - stats.duplicates
        assert stats.duplicates >= 1

    def test_td_expands_every_node(self, fig4):
        stats = BaselineStats()
        td_all(fig4, list(FIG4_QUERY), FIG4_RMAX, stats=stats)
        assert stats.expansions == fig4.n
