"""Partitioner invariants and routing-manifest round-trips."""

import json

import pytest

from repro.datasets.paper_example import figure4_graph
from repro.exceptions import (
    QueryError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotNotFoundError,
)
from repro.graph.generators import random_database_graph
from repro.shard import (
    ROUTING_NAME,
    KeywordBloom,
    RoutingManifest,
    is_routing_root,
    partition_graph,
    partition_snapshot,
)
from repro.snapshot.store import SnapshotStore
from repro.text.inverted_index import CommunityIndex


def _random(seed=0, n=16):
    return random_database_graph(n, 0.25, ["a", "b", "c"], seed=seed)


# ----------------------------------------------------------------------
# partition_graph
# ----------------------------------------------------------------------
def test_every_node_owned_exactly_once():
    dbg = _random()
    result = partition_graph(dbg, 6.0, 3)
    assert len(result.owners) == dbg.n
    owned = sorted(g for b in result.bundles for g in b.owned)
    assert owned == list(range(dbg.n))
    for bundle in result.bundles:
        for g in bundle.owned:
            assert result.owners[g] == bundle.shard_id


def test_owned_nodes_are_members_and_node_map_sorted():
    result = partition_graph(_random(), 6.0, 3)
    for bundle in result.bundles:
        members = set(bundle.node_map)
        assert set(bundle.owned) <= members
        assert bundle.node_map == sorted(bundle.node_map)
        assert bundle.dbg.n == len(bundle.node_map)


def test_halo_defaults_to_three_radii():
    result = partition_graph(_random(), 5.0, 2)
    assert result.halo_radius == 15.0
    explicit = partition_graph(_random(), 5.0, 2, halo_radius=7.0)
    assert explicit.halo_radius == 7.0


def test_halo_contains_all_nodes_within_distance():
    """Every node within undirected halo distance of an owned node is
    a shard member — the containment bound the merge relies on."""
    import heapq

    dbg = _random(seed=2)
    result = partition_graph(dbg, 4.0, 2)
    adjacency = [[] for _ in range(dbg.n)]
    for u, v, w in dbg.graph.edges():
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    for bundle in result.bundles:
        dist = {g: 0.0 for g in bundle.owned}
        heap = [(0.0, g) for g in bundle.owned]
        heapq.heapify(heap)
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nb, w in adjacency[node]:
                nd = d + w
                if nd <= result.halo_radius \
                        and nd < dist.get(nb, float("inf")):
                    dist[nb] = nd
                    heapq.heappush(heap, (nd, nb))
        assert set(dist) <= set(bundle.node_map)


def test_shard_subgraph_preserves_keywords_and_labels():
    dbg = figure4_graph()
    result = partition_graph(dbg, 8.0, 2)
    for bundle in result.bundles:
        for local, g in enumerate(bundle.node_map):
            assert bundle.dbg.keywords_of(local) == dbg.keywords_of(g)
            assert bundle.dbg.label_of(local) == dbg.label_of(g)


def test_single_shard_is_whole_graph():
    dbg = _random()
    result = partition_graph(dbg, 6.0, 1)
    assert len(result.bundles) == 1
    assert result.bundles[0].node_map == list(range(dbg.n))


def test_partition_validation():
    dbg = _random(n=4)
    with pytest.raises(QueryError):
        partition_graph(dbg, 6.0, 0)
    with pytest.raises(QueryError):
        partition_graph(dbg, 6.0, 5)
    with pytest.raises(QueryError):
        partition_graph(dbg, -1.0, 2)


# ----------------------------------------------------------------------
# KeywordBloom
# ----------------------------------------------------------------------
def test_bloom_has_no_false_negatives():
    keys = [f"kw{i:04d}" for i in range(200)]
    bloom = KeywordBloom.build(keys)
    assert all(bloom.might_contain(k) for k in keys)


def test_bloom_rejects_most_absent_keys():
    bloom = KeywordBloom.build([f"kw{i:04d}" for i in range(200)])
    absent = [f"zz{i:04d}" for i in range(500)]
    false_positives = sum(bloom.might_contain(k) for k in absent)
    assert false_positives < 25          # ~1% expected at 10 bits/key


def test_bloom_json_round_trip():
    bloom = KeywordBloom.build(["alpha", "beta"])
    clone = KeywordBloom.from_dict(
        json.loads(json.dumps(bloom.to_dict())))
    assert clone.might_contain("alpha")
    assert clone.might_contain("beta")
    assert not clone.might_contain("gamma")
    assert clone.bitmap == bloom.bitmap


# ----------------------------------------------------------------------
# partition_snapshot + RoutingManifest
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def partitioned(tmp_path_factory):
    """A published fig4 snapshot partitioned into two shards."""
    tmp = tmp_path_factory.mktemp("parts")
    dbg = figure4_graph()
    store = SnapshotStore(tmp / "store")
    snapshot = store.publish(dbg, CommunityIndex.build(dbg, 10.0),
                             provenance={"dataset": "fig4"})
    manifest, path = partition_snapshot(tmp / "store", tmp / "out", 2)
    return snapshot, manifest, path, tmp


def test_partition_snapshot_publishes_loadable_shards(partitioned):
    from repro.snapshot.snapshot import load_snapshot

    snapshot, manifest, path, tmp = partitioned
    assert manifest.source_snapshot == snapshot.id
    assert len(manifest.shards) == 2
    for entry in manifest.shards:
        shard = load_snapshot(
            tmp / "out" / entry.store / entry.snapshot_id)
        assert shard.id == entry.snapshot_id
        assert shard.dbg.n == len(entry.node_map)
        assert shard.index is not None
        assert shard.index.radius == manifest.index_radius
        assert shard.provenance["partition"]["source_snapshot"] \
            == snapshot.id


def test_routing_manifest_round_trip(partitioned):
    _, manifest, path, tmp = partitioned
    loaded = RoutingManifest.load(tmp / "out")
    assert loaded.generation == manifest.generation
    assert loaded.owners == manifest.owners
    assert loaded.index_radius == manifest.index_radius
    assert [e.snapshot_id for e in loaded.shards] \
        == [e.snapshot_id for e in manifest.shards]
    assert [e.node_map for e in loaded.shards] \
        == [e.node_map for e in manifest.shards]
    # The file itself loads too.
    assert RoutingManifest.load(path).generation == manifest.generation


def test_is_routing_root(partitioned, tmp_path):
    _, _, path, tmp = partitioned
    assert is_routing_root(tmp / "out")
    assert is_routing_root(path)
    assert not is_routing_root(tmp / "store")
    assert not is_routing_root(tmp_path)


def test_keyword_routing(partitioned):
    _, manifest, _, _ = partitioned
    assert manifest.keyword_known("a")
    assert not manifest.keyword_known("definitely-not-a-keyword")
    assert manifest.shards_for(["a", "b"])
    assert manifest.shards_for(["definitely-not-a-keyword"]) == []


def test_manifest_rejects_wrong_kind_and_version(tmp_path):
    (tmp_path / ROUTING_NAME).write_text(json.dumps({"kind": "nope"}))
    with pytest.raises(SnapshotFormatError):
        RoutingManifest.load(tmp_path)
    with pytest.raises(SnapshotNotFoundError):
        RoutingManifest.load(tmp_path / "missing")
    (tmp_path / ROUTING_NAME).write_text(json.dumps(
        {"kind": "routing-manifest", "version": 99}))
    with pytest.raises(SnapshotFormatError):
        RoutingManifest.load(tmp_path)


def test_partition_requires_an_index(tmp_path):
    dbg = figure4_graph()
    SnapshotStore(tmp_path / "store").publish(dbg)   # graph only
    with pytest.raises(SnapshotError):
        partition_snapshot(tmp_path / "store", tmp_path / "out", 2)


def test_repartition_is_structurally_stable(partitioned):
    """Re-partitioning reproduces the same regions and ownership
    (snapshot *ids* differ — the index section embeds build time)."""
    _, manifest, _, tmp = partitioned
    again, _ = partition_snapshot(tmp / "store", tmp / "out2", 2)
    assert again.owners == manifest.owners
    assert [e.node_map for e in again.shards] \
        == [e.node_map for e in manifest.shards]
    assert [e.owned_nodes for e in again.shards] \
        == [e.owned_nodes for e in manifest.shards]
