"""Serialization edge cases: versioning, empty graphs, unicode."""

import json

import pytest

from repro.exceptions import GraphError, QueryError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph
from repro.graph.io import load_database_graph, save_database_graph
from repro.text.inverted_index import CommunityIndex
from repro.text.persistence import load_index, save_index


class TestVersioning:
    def test_graph_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text(json.dumps(
            {"format": "repro.database_graph", "version": 999}))
        with pytest.raises(GraphError):
            load_database_graph(path)

    def test_index_version_mismatch_rejected(self, tmp_path, fig4):
        path = tmp_path / "i.json"
        path.write_text(json.dumps(
            {"format": "repro.community_index", "version": 999}))
        with pytest.raises(QueryError):
            load_index(path, fig4)


class TestDegenerateContent:
    def test_empty_graph_round_trip(self, tmp_path):
        dbg = DatabaseGraph(DiGraph(0).compile(), [])
        path = tmp_path / "empty.json"
        save_database_graph(dbg, path)
        loaded = load_database_graph(path)
        assert loaded.n == 0 and loaded.m == 0

    def test_unicode_labels_survive(self, tmp_path):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        dbg = DatabaseGraph(g.compile(), [{"a"}, set()],
                            ["Müller, José", "論文 №1"])
        path = tmp_path / "uni.json.gz"
        save_database_graph(dbg, path)
        loaded = load_database_graph(path)
        assert loaded.label_of(0) == "Müller, José"
        assert loaded.label_of(1) == "論文 №1"

    def test_empty_index_round_trip(self, tmp_path):
        dbg = DatabaseGraph(DiGraph(1).compile(), [set()])
        index = CommunityIndex.build(dbg, radius=3.0)
        path = tmp_path / "i.json"
        save_index(index, path)
        loaded = load_index(path, dbg)
        assert loaded.nodes("anything") == []
        assert loaded.radius == 3.0

    def test_float_weights_precision(self, tmp_path, fig4):
        path = tmp_path / "fig4.json"
        save_database_graph(fig4, path)
        loaded = load_database_graph(path)
        for (u1, v1, w1), (u2, v2, w2) in zip(
                sorted(fig4.graph.edges()),
                sorted(loaded.graph.edges())):
            assert (u1, v1) == (u2, v2)
            assert w1 == w2  # exact, not approximate
