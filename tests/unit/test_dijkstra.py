"""Unit tests for bounded multi-source Dijkstra."""

import math

from repro.graph.csr import CompiledGraph
from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import (
    bounded_dijkstra,
    multi_source_distances,
    single_source_distances,
)


def build(n, edges):
    return CompiledGraph.from_edges(n, edges)


class TestSingleSource:
    def test_line_distances(self):
        cg = build(3, [(0, 1, 1.0), (1, 2, 2.0)])
        d = single_source_distances(cg, 0)
        assert d[0] == 0.0 and d[1] == 1.0 and d[2] == 3.0

    def test_unreachable_absent(self):
        cg = build(3, [(0, 1, 1.0)])
        d = single_source_distances(cg, 0)
        assert 2 not in d
        assert d.get(2) == math.inf
        assert d.get(2, -1.0) == -1.0

    def test_radius_bound_inclusive(self):
        cg = build(3, [(0, 1, 2.0), (1, 2, 2.0)])
        d = single_source_distances(cg, 0, radius=4.0)
        assert d[2] == 4.0  # exactly Rmax is kept (Def. 2.1)
        d = single_source_distances(cg, 0, radius=3.9)
        assert 2 not in d

    def test_reverse_gives_distance_to_source(self):
        cg = build(3, [(0, 1, 1.0), (1, 2, 2.0)])
        d = single_source_distances(cg, 2, reverse=True)
        assert d[0] == 3.0 and d[1] == 2.0 and d[2] == 0.0

    def test_shorter_path_wins(self, ):
        g = DiGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 2.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(2, 3, 0.5)
        d = single_source_distances(g.compile(), 0)
        assert d[3] == 2.0  # 0->1->3, not 0->2->3 (2.5)

    def test_zero_weight_edges(self):
        cg = build(3, [(0, 1, 0.0), (1, 2, 0.0)])
        d = single_source_distances(cg, 0)
        assert d[2] == 0.0


class TestMultiSource:
    def test_nearest_source_tracked(self):
        cg = build(4, [(0, 2, 1.0), (1, 2, 5.0), (1, 3, 1.0)])
        d = bounded_dijkstra(cg.forward, [0, 1])
        assert d.source(2) == 0
        assert d.source(3) == 1
        assert d.source(0) == 0 and d.source(1) == 1

    def test_weighted_seeds(self):
        cg = build(2, [(0, 1, 1.0)])
        d = bounded_dijkstra(cg.forward, [(0, 2.0)])
        assert d[0] == 2.0 and d[1] == 3.0

    def test_seed_above_radius_ignored(self):
        cg = build(2, [(0, 1, 1.0)])
        d = bounded_dijkstra(cg.forward, [(0, 5.0)], radius=4.0)
        assert len(d) == 0

    def test_duplicate_seeds_keep_smallest(self):
        cg = build(2, [(0, 1, 1.0)])
        d = bounded_dijkstra(cg.forward, [(0, 3.0), (0, 1.0)])
        assert d[0] == 1.0

    def test_empty_sources(self):
        cg = build(3, [(0, 1, 1.0)])
        d = bounded_dijkstra(cg.forward, [])
        assert len(d) == 0

    def test_tie_breaks_toward_smaller_node_id(self):
        # nodes 0 and 1 both reach 2 at distance 1.0
        cg = build(3, [(0, 2, 1.0), (1, 2, 1.0)])
        d = bounded_dijkstra(cg.forward, [0, 1])
        assert d.source(2) == 0

    def test_multi_source_reverse_helper(self):
        cg = build(3, [(0, 1, 1.0), (2, 1, 2.0)])
        d = multi_source_distances(cg, [1], reverse=True)
        assert d[0] == 1.0 and d[2] == 2.0


class TestDistanceMap:
    def test_mapping_protocol(self):
        cg = build(2, [(0, 1, 1.0)])
        d = single_source_distances(cg, 0)
        assert set(iter(d)) == {0, 1}
        assert len(d) == 2
        assert dict(d.items()) == {0: 0.0, 1: 1.0}
        assert d.distances() == {0: 0.0, 1: 1.0}
        assert d.sources() == {0: 0, 1: 0}
