"""Unit tests for the naive reference enumerator."""

import pytest

from repro.core.naive import naive_all, naive_cores, naive_top_k
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX, node_id
from repro.exceptions import QueryError
from repro.graph.generators import line_database_graph


class TestNaiveCores:
    def test_fig4_core_costs(self, fig4):
        cores = naive_cores(fig4, list(FIG4_QUERY), FIG4_RMAX)
        key = tuple(node_id(x) for x in ("v4", "v8", "v6"))
        assert cores[key] == 7.0
        assert len(cores) == 5

    def test_cost_is_min_over_centers(self):
        # two centers for the same core with different costs
        dbg = line_database_graph([1.0, 3.0], [{"a"}, set(), {"b"}])
        cores = naive_cores(dbg, ["a", "b"], 10.0)
        # center 0: 0+4; center 1: 1+3; center 2: 4+0 -> min 4
        assert cores[(0, 2)] == 4.0

    def test_negative_rmax_rejected(self, fig4):
        with pytest.raises(QueryError):
            naive_cores(fig4, ["a"], -1.0)


class TestNaiveAll:
    def test_sorted_by_cost_then_core(self, fig4):
        results = naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX)
        keys = [(c.cost, c.core) for c in results]
        assert keys == sorted(keys)

    def test_missing_keyword_empty(self, fig4):
        assert naive_all(fig4, ["nope"], FIG4_RMAX) == []


class TestNaiveTopK:
    def test_prefix(self, fig4):
        full = naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert naive_top_k(fig4, list(FIG4_QUERY), 2, FIG4_RMAX) \
            == full[:2]

    def test_k_validation(self, fig4):
        with pytest.raises(QueryError):
            naive_top_k(fig4, ["a"], 0, FIG4_RMAX)
