"""Unit tests for the shared JSON vocabulary
(:mod:`repro.service.serialize`)."""

import json

import pytest

from repro.core.community import Community
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryContext, QuerySpec
from repro.service.serialize import (
    communities_from_dicts,
    community_to_dict,
    context_to_dict,
    dumps,
    results_to_dict,
    spec_to_dict,
)


@pytest.fixture()
def answers(fig4):
    search = CommunitySearch(fig4)
    search.build_index(radius=FIG4_RMAX)
    ctx = QueryContext()
    spec = QuerySpec.comm_k(FIG4_QUERY, 3, FIG4_RMAX)
    return fig4, spec, ctx, search.engine.execute(spec, ctx)


class TestCommunityToDict:
    def test_plain_fields(self, answers):
        _, _, _, results = answers
        payload = community_to_dict(results[0])
        assert payload["core"] == list(results[0].core)
        assert payload["cost"] == results[0].cost
        assert payload["nodes"] == list(results[0].nodes)
        assert all(len(edge) == 3 for edge in payload["edges"])
        assert "labels" not in payload

    def test_labels_resolved_from_graph(self, answers):
        fig4, _, _, results = answers
        payload = community_to_dict(results[0], fig4)
        assert set(payload["labels"]) \
            == {str(u) for u in results[0].nodes}
        assert payload["labels"][str(results[0].nodes[0])] \
            == fig4.label_of(results[0].nodes[0])

    def test_json_round_trip_to_community(self, answers):
        _, _, _, results = answers
        wire = json.loads(json.dumps(
            [community_to_dict(c) for c in results]))
        rebuilt = communities_from_dicts(wire)
        assert rebuilt == list(results)

    def test_rebuilt_are_real_dataclasses(self, answers):
        _, _, _, results = answers
        rebuilt = communities_from_dicts(
            [community_to_dict(c) for c in results])
        assert isinstance(rebuilt[0], Community)
        assert rebuilt[0].knodes == results[0].knodes


class TestEnvelope:
    def test_results_to_dict_full_envelope(self, answers):
        fig4, spec, ctx, results = answers
        payload = results_to_dict(results, dbg=fig4, context=ctx,
                                  spec=spec, elapsed_seconds=0.5)
        assert payload["count"] == 3
        assert len(payload["communities"]) == 3
        assert payload["query"]["keywords"] == list(FIG4_QUERY)
        assert payload["query"]["mode"] == "topk"
        assert payload["query"]["k"] == 3
        assert payload["elapsed_seconds"] == 0.5
        assert payload["stats"]["counters"]["communities"] == 3
        assert "project" in payload["stats"]["timings"]

    def test_optional_parts_absent_when_not_given(self, answers):
        _, _, _, results = answers
        payload = results_to_dict(results)
        assert set(payload) == {"count", "communities"}

    def test_context_to_dict_types(self):
        ctx = QueryContext()
        ctx.add_time("project", 0.25)
        ctx.count("communities", 2)
        payload = context_to_dict(ctx)
        assert payload["timings"] == {"project": 0.25}
        assert payload["counters"] == {"communities": 2}
        assert payload["total_seconds"] == 0.25

    def test_spec_to_dict_echoes_all_knobs(self):
        spec = QuerySpec.comm_k(("x", "y"), 7, 4.0, algorithm="bu",
                                aggregate="max")
        payload = spec_to_dict(spec)
        assert payload == {"keywords": ["x", "y"], "rmax": 4.0,
                           "mode": "topk", "k": 7, "algorithm": "bu",
                           "aggregate": "max"}

    def test_dumps_is_deterministic_json(self, answers):
        fig4, spec, ctx, results = answers
        payload = results_to_dict(results, dbg=fig4, context=ctx,
                                  spec=spec)
        assert dumps(payload) == dumps(json.loads(dumps(payload)))


class TestCliJsonParity:
    def test_cli_json_matches_serializer_shapes(self, capsys):
        """``--json`` output parses into the shared envelope."""
        from repro.cli import main
        assert main(["query", "--dataset", "fig4",
                     "--keywords", "a,b,c", "--rmax", "8",
                     "--k", "2", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["count"] == 2
        assert payload["query"]["algorithm"] == "pd"
        assert {"core", "cost", "centers", "pnodes", "nodes", "edges",
                "labels"} <= set(payload["communities"][0])
        assert payload["stats"]["counters"]["communities"] == 2
