"""Unit tests for incremental graph/index maintenance."""

import pytest

from repro.exceptions import GraphError
from repro.graph.database_graph import DatabaseGraph
from repro.graph.digraph import DiGraph
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import (
    GraphDelta,
    affected_keywords,
    apply_delta,
    extend_database_graph,
    update_index,
)


@pytest.fixture()
def base():
    """0(a) -1- 1 -1- 2(b), bidirected, with an index at R=4."""
    g = DiGraph(3)
    g.add_bidirected_edge(0, 1, 1.0, 1.0)
    g.add_bidirected_edge(1, 2, 1.0, 1.0)
    dbg = DatabaseGraph(g.compile(), [{"a"}, set(), {"b"}],
                        ["n0", "n1", "n2"])
    return dbg, CommunityIndex.build(dbg, radius=4.0)


class TestExtend:
    def test_nodes_appended_in_order(self, base):
        dbg, _ = base
        delta = GraphDelta(
            new_nodes=[({"c"}, "n3", ("T", 3)), (set(), "n4", None)],
            new_edges=[(2, 3, 1.0), (3, 4, 2.0)])
        new_dbg, heads = extend_database_graph(dbg, delta)
        assert new_dbg.n == 5
        assert new_dbg.label_of(3) == "n3"
        assert new_dbg.keywords_of(3) == frozenset({"c"})
        assert new_dbg.provenance_of(3) == ("T", 3)
        assert heads == {3, 4}

    def test_old_content_preserved(self, base):
        dbg, _ = base
        new_dbg, _ = extend_database_graph(
            dbg, GraphDelta(new_nodes=[(set(), "x", None)]))
        for u in range(dbg.n):
            assert new_dbg.keywords_of(u) == dbg.keywords_of(u)
            assert new_dbg.label_of(u) == dbg.label_of(u)
        assert sorted(new_dbg.graph.edges())[:dbg.m] \
            == sorted(dbg.graph.edges())

    def test_edge_bounds_checked(self, base):
        dbg, _ = base
        with pytest.raises(GraphError):
            extend_database_graph(
                dbg, GraphDelta(new_edges=[(0, 99, 1.0)]))
        with pytest.raises(GraphError):
            extend_database_graph(
                dbg, GraphDelta(new_edges=[(0, 1, -1.0)]))

    def test_banks_reweight(self, base):
        dbg, _ = base
        delta = GraphDelta(new_nodes=[(set(), "n3", None)],
                           new_edges=[(3, 1, 1.0), (1, 3, 1.0)])
        new_dbg, heads = extend_database_graph(dbg, delta,
                                               banks_reweight=True)
        # node 1 now has in-degree 3 -> weight log2(4) = 2 on edges
        # into it
        assert new_dbg.graph.edge_weight(0, 1) == 2.0
        assert new_dbg.graph.edge_weight(3, 1) == 2.0
        # in-degree of 0 unchanged (1) -> weight 1
        assert new_dbg.graph.edge_weight(1, 0) == 1.0
        assert 1 in heads and 3 in heads


class TestAffectedKeywords:
    def test_new_node_keywords_always_affected(self, base):
        dbg, _ = base
        delta = GraphDelta(new_nodes=[({"zz"}, "n3", None)])
        new_dbg, heads = extend_database_graph(dbg, delta)
        assert "zz" in affected_keywords(new_dbg, delta, heads, 4.0,
                                         dbg.n)

    def test_reachable_keywords_affected(self, base):
        dbg, _ = base
        # new edge into node 1; from head 1, keywords a and b are
        # reachable within the radius
        delta = GraphDelta(new_nodes=[(set(), "n3", None)],
                           new_edges=[(3, 1, 1.0)])
        new_dbg, heads = extend_database_graph(dbg, delta)
        affected = affected_keywords(new_dbg, delta, heads, 4.0, dbg.n)
        assert affected == {"a", "b"}

    def test_far_keywords_unaffected(self, base):
        dbg, _ = base
        # an isolated new component cannot affect a or b
        delta = GraphDelta(
            new_nodes=[({"zz"}, "n3", None), (set(), "n4", None)],
            new_edges=[(4, 3, 1.0)])
        new_dbg, heads = extend_database_graph(dbg, delta)
        affected = affected_keywords(new_dbg, delta, heads, 4.0, dbg.n)
        assert affected == {"zz"}


class TestUpdateIndex:
    def test_matches_full_rebuild_for_affected(self, base):
        dbg, index = base
        delta = GraphDelta(new_nodes=[({"a"}, "n3", None)],
                           new_edges=[(3, 1, 1.0), (1, 3, 1.0)])
        new_dbg, new_index = apply_delta(index, delta)
        rebuilt = CommunityIndex.build(new_dbg, radius=4.0)
        for kw in ("a", "b"):
            assert new_index.nodes(kw) == rebuilt.nodes(kw)
            assert new_index.edges(kw) == rebuilt.edges(kw)

    def test_build_seconds_accumulates(self, base):
        _, index = base
        _, new_index = apply_delta(index, GraphDelta())
        assert new_index.build_seconds >= index.build_seconds

    def test_queries_after_growth(self, base):
        from repro.core.search import CommunitySearch
        _, index = base
        # connect a new c-node near b
        delta = GraphDelta(new_nodes=[({"c"}, "n3", None)],
                           new_edges=[(2, 3, 1.0), (3, 2, 1.0)])
        new_dbg, new_index = apply_delta(index, delta)
        search = CommunitySearch(new_dbg, index=new_index)
        results = search.all_communities(["a", "b", "c"], 4.0)
        assert results
        assert any(3 in c.core for c in results)
