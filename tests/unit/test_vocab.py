"""Unit tests for the KWF-banded benchmark vocabulary."""

import random

import pytest

from repro.datasets import vocab
from repro.exceptions import QueryError


class TestBands:
    def test_default_bands_cover_paper_kwfs(self):
        assert tuple(b.kwf for b in vocab.BENCH_BANDS) \
            == vocab.KWF_VALUES

    def test_band_names_stable(self):
        assert vocab.band_name(0.0009) == "0009"
        assert vocab.band_name(0.0015) == "0015"

    def test_keywords_per_band(self):
        for band in vocab.BENCH_BANDS:
            assert len(band.keywords) == vocab.KEYWORDS_PER_BAND
            assert all(
                kw.startswith(f"kw{vocab.band_name(band.kwf)}")
                for kw in band.keywords)

    def test_band_for(self):
        assert vocab.band_for(0.0009).kwf == 0.0009
        with pytest.raises(QueryError):
            vocab.band_for(0.5)

    def test_query_keywords(self):
        kws = vocab.query_keywords(0.0009, 3)
        assert len(kws) == 3
        assert len(set(kws)) == 3

    def test_query_keywords_l_validation(self):
        with pytest.raises(QueryError):
            vocab.query_keywords(0.0009, 0)
        with pytest.raises(QueryError):
            vocab.query_keywords(0.0009, 99)


class TestPlanting:
    def test_uniform_plant_exact_counts(self):
        rng = random.Random(0)
        plan = vocab.plan_plants(rng, total_tuples=20_000, slots=5_000)
        for band in vocab.BENCH_BANDS:
            expected = max(1, round(band.kwf * 20_000))
            for kw in band.keywords:
                slots = plan[kw]
                assert len(slots) == expected
                assert len(set(slots)) == expected
                assert all(0 <= s < 5_000 for s in slots)

    def test_clustered_plant_exact_counts(self):
        rng = random.Random(0)
        plan = vocab.plan_plants_clustered(rng, total_tuples=20_000,
                                           slots=5_000)
        for band in vocab.BENCH_BANDS:
            expected = max(1, round(band.kwf * 20_000))
            for kw in band.keywords:
                assert len(plan[kw]) == expected

    def test_clustered_plant_is_clustered(self):
        rng = random.Random(1)
        plan = vocab.plan_plants_clustered(rng, total_tuples=50_000,
                                           slots=10_000)
        band = vocab.band_for(0.0009)
        slots = sorted(plan[band.keywords[0]])
        span = slots[-1] - slots[0]
        # 45 occurrences clustered into ~7 clusters must span far less
        # than a uniform sample would (expected span ~ slots)
        assert span < 10_000 * 0.9

    def test_band_keywords_share_clusters(self):
        rng = random.Random(2)
        plan = vocab.plan_plants_clustered(rng, total_tuples=50_000,
                                           slots=10_000)
        band = vocab.band_for(0.0009)
        a = plan[band.keywords[0]]
        b = plan[band.keywords[1]]
        # some a-slot must sit within the cluster spread of a b-slot
        closest = min(abs(x - y) for x in a for y in b)
        assert closest <= 3 * max(3.0, 10_000 * 0.0015)

    def test_center_grid_snapping(self):
        rng = random.Random(3)
        plan = vocab.plan_plants_clustered(
            rng, total_tuples=50_000, slots=10_000, center_grid=500)
        band = vocab.band_for(0.0003)
        slots = plan[band.keywords[0]]
        spread = max(3.0, 10_000 * 0.0015)
        assert all(
            min(abs(s - round(s / 500) * 500) for _ in (0,))
            <= 5 * spread
            for s in slots)

    def test_plant_validation(self):
        rng = random.Random(0)
        with pytest.raises(QueryError):
            vocab.plan_plants(rng, total_tuples=0, slots=10)
        with pytest.raises(QueryError):
            vocab.plan_plants(rng, total_tuples=10_000_000, slots=2)
        with pytest.raises(QueryError):
            vocab.plan_plants_clustered(rng, total_tuples=10_000_000,
                                        slots=2)


class TestFiller:
    def test_filler_title_word_count(self):
        rng = random.Random(0)
        assert len(vocab.filler_title(rng, 4).split()) == 4

    def test_filler_does_not_collide_with_planted(self):
        planted = {
            kw for band in vocab.BENCH_BANDS for kw in band.keywords}
        assert not planted & set(vocab.FILLER_WORDS)
