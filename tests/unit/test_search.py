"""Unit tests for the CommunitySearch facade."""

import pytest

from repro.core.search import CommunitySearch
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.exceptions import QueryError
from repro.rdb.database import Database
from repro.rdb.schema import Column, TableSchema


@pytest.fixture()
def search(fig4):
    s = CommunitySearch(fig4)
    s.build_index(radius=FIG4_RMAX)
    return s


class TestIndexing:
    def test_project_requires_index(self, fig4):
        s = CommunitySearch(fig4)
        with pytest.raises(QueryError):
            s.project(["a"], 5.0)

    def test_unknown_keyword_raises(self, search):
        with pytest.raises(QueryError):
            search.project(["a", "nope"], 5.0)
        with pytest.raises(QueryError):
            search.all_communities(["nope"], 5.0)

    def test_build_index_attaches(self, fig4):
        s = CommunitySearch(fig4)
        idx = s.build_index(radius=4.0)
        assert s.index is idx
        assert idx.radius == 4.0


class TestQueries:
    def test_all_with_and_without_projection_agree(self, search):
        with_proj = search.all_communities(
            list(FIG4_QUERY), FIG4_RMAX, use_projection=True)
        without = search.all_communities(
            list(FIG4_QUERY), FIG4_RMAX, use_projection=False)
        assert sorted((c.core, c.cost) for c in with_proj) \
            == sorted((c.core, c.cost) for c in without)

    def test_results_in_gd_id_space(self, search, fig4):
        results = search.all_communities(list(FIG4_QUERY), FIG4_RMAX)
        for community in results:
            for node in community.nodes:
                assert 0 <= node < fig4.n

    def test_all_algorithms_agree(self, search):
        reference = None
        for alg in ("pd", "bu", "td", "naive"):
            got = sorted(
                (c.core, c.cost)
                for c in search.all_communities(
                    list(FIG4_QUERY), FIG4_RMAX, algorithm=alg))
            if reference is None:
                reference = got
            assert got == reference

    def test_unknown_algorithm_rejected(self, search):
        with pytest.raises(QueryError):
            search.all_communities(["a"], 5.0, algorithm="bogus")
        with pytest.raises(QueryError):
            search.top_k(["a"], 5, 5.0, algorithm="bogus")

    def test_top_k_all_algorithms_agree_on_costs(self, search):
        reference = None
        for alg in ("pd", "bu", "td", "naive"):
            costs = [
                c.cost for c in search.top_k(list(FIG4_QUERY), 4,
                                             FIG4_RMAX, algorithm=alg)]
            if reference is None:
                reference = costs
            assert costs == reference

    def test_top_k_validation(self, search):
        with pytest.raises(QueryError):
            search.top_k(["a"], 0, 5.0)

    def test_empty_keywords_rejected(self, search):
        with pytest.raises(QueryError):
            search.all_communities([], 5.0)

    def test_edges_reinduced_against_gd(self, search, fig4):
        for community in search.all_communities(list(FIG4_QUERY),
                                                FIG4_RMAX):
            assert list(community.edges) \
                == fig4.graph.induced_edges(list(community.nodes))


class TestStream:
    def test_projected_stream_interface(self, search):
        stream = search.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        first = stream.take(2)
        assert [c.cost for c in first] == [7.0, 10.0]
        assert stream.emitted == 2
        rest = list(stream)
        assert len(rest) == 3
        assert stream.exhausted

    def test_unprojected_stream(self, fig4):
        s = CommunitySearch(fig4)  # no index
        stream = s.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)
        assert [c.cost for c in stream.take(2)] == [7.0, 10.0]


class TestFromDatabase:
    def test_builds_graph(self):
        db = Database()
        db.create_table(TableSchema(
            "T", [Column("id", int), Column("txt", str)], "id",
            text_columns=["txt"]))
        db.insert("T", {"id": 1, "txt": "hello world"})
        s = CommunitySearch.from_database(db)
        assert s.dbg.n == 1
        assert s.dbg.nodes_with_keyword("hello") == [0]
