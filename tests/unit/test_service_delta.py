"""Handler-level tests for ``POST /admin/delta`` and its
observability surface.

Drives :meth:`CommunityService.handle` directly (no sockets): the
WAL-before-apply ordering, the acknowledged LSN in the response, the
typed 400s from boundary validation, the ``dirty``/``deltas_applied``
health fields that exist even *without* a WAL, the ``wal`` healthz
block, and the ``repro_wal_*`` / ``repro_engine_dirty`` metrics.
"""

import json

import pytest

from repro.datasets.paper_example import FIG4_RMAX
from repro.engine import QueryEngine
from repro.service import CommunityService
from repro.wal import WriteAheadLog


@pytest.fixture()
def engine(fig4):
    e = QueryEngine(fig4)
    e.build_index(radius=FIG4_RMAX)
    return e


@pytest.fixture()
def service(engine):
    with CommunityService(engine, port=0) as svc:
        yield svc


@pytest.fixture()
def wal_service(fig4, tmp_path):
    wal = WriteAheadLog(tmp_path / "deltas.wal", fsync="off")
    engine = QueryEngine(fig4)
    engine.build_index(radius=FIG4_RMAX)
    with CommunityService(engine, port=0, wal=wal) as svc:
        yield svc
    wal.close()


def call(service, method, path, payload=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    status, _template, raw, _ctype = service.handle(method, path,
                                                    body)
    return status, json.loads(raw)


GOOD_DELTA = {"nodes": [{"keywords": ["zeta"], "label": "z0"}],
              "edges": [[13, 0, 1.0], [0, 13, 1.0]]}


class TestDeltaWithoutWal:
    def test_delta_applies_and_reports_no_lsn(self, service):
        status, body = call(service, "POST", "/admin/delta",
                            GOOD_DELTA)
        assert status == 200
        assert body["lsn"] is None  # nothing durable to acknowledge
        assert body["nodes_added"] == 1
        assert body["edges_added"] == 2
        assert body["dirty"] is True
        assert body["deltas_applied"] == 1
        assert "pending_deltas" not in body

    def test_healthz_surfaces_dirty_state(self, service):
        _status, before = call(service, "GET", "/healthz")
        assert before["dirty"] is False
        assert before["deltas_applied"] == 0
        assert "wal" not in before
        call(service, "POST", "/admin/delta", GOOD_DELTA)
        _status, after = call(service, "GET", "/healthz")
        assert after["dirty"] is True
        assert after["deltas_applied"] == 1

    def test_metrics_surface_dirty_gauge(self, service):
        status, _template, text, _ctype = service.handle(
            "GET", "/metrics", b"")
        assert status == 200
        assert "repro_engine_dirty 0" in text
        assert "repro_engine_deltas_applied_total 0" in text
        assert "repro_wal_lsn" not in text
        call(service, "POST", "/admin/delta", GOOD_DELTA)
        _s, _t, text, _c = service.handle("GET", "/metrics", b"")
        assert "repro_engine_dirty 1" in text
        assert "repro_engine_deltas_applied_total 1" in text


class TestDeltaValidation:
    @pytest.mark.parametrize("payload, fragment", [
        ({}, "at least one"),
        ({"nodes": [{"keywords": ["q"]}, {"keywords": ["q"]}],
          "edges": [[99, 0, 1.0]]}, "unknown node"),
        ({"edges": [[0, 1, float("nan")]]}, "finite"),
        ({"edges": [[0, 1, -1.0]]}, ">= 0"),
        ({"nodes": [{"id": 13}, {"id": 13}]}, "duplicate"),
        ({"nodes": [{"keywords": ["q"], "id": 5}]}, "densely"),
    ])
    def test_invalid_payloads_are_400(self, service, payload,
                                      fragment):
        body = json.dumps(payload).encode()
        status, _t, raw, _c = service.handle("POST", "/admin/delta",
                                             body)
        assert status == 400
        assert fragment in json.loads(raw)["error"]
        # a rejected delta must not touch the engine
        assert service.engine.dirty is False

    def test_banks_reweight_must_be_boolean(self, service):
        payload = dict(GOOD_DELTA, banks_reweight="yes")
        status, body = call(service, "POST", "/admin/delta", payload)
        assert status == 400
        assert "boolean" in body["error"]

    def test_malformed_json_is_400(self, service):
        status, _t, raw, _c = service.handle("POST", "/admin/delta",
                                             b"{nope")
        assert status == 400

    def test_rejected_delta_never_reaches_wal(self, wal_service):
        status, _body = call(wal_service, "POST", "/admin/delta",
                             {"edges": [[0, 999, 1.0]]})
        assert status == 400
        assert wal_service.wal.lsn == 0


class TestDeltaWithWal:
    def test_ack_carries_durable_lsn(self, wal_service):
        status, body = call(wal_service, "POST", "/admin/delta",
                            GOOD_DELTA)
        assert status == 200
        assert body["lsn"] == 1
        assert body["pending_deltas"] == 1
        status, body = call(wal_service, "POST", "/admin/delta",
                            {"edges": [[0, 3, 0.5]]})
        assert body["lsn"] == 2
        # WAL-before-apply: the log holds exactly the acknowledged
        # deltas, stamped with the serving engine's base snapshot
        records = wal_service.wal.records()
        assert [r["lsn"] for r in records] == [1, 2]
        assert all(r["type"] == "delta" for r in records)

    def test_healthz_wal_block(self, wal_service):
        call(wal_service, "POST", "/admin/delta", GOOD_DELTA)
        _status, health = call(wal_service, "GET", "/healthz")
        wal = health["wal"]
        assert wal["enabled"] is True
        assert wal["lsn"] == 1
        assert wal["pending_deltas"] == 1
        assert wal["dirty"] is True
        assert wal["fsync"] == "off"
        assert wal["appends"] == 1

    def test_healthz_compaction_block(self, wal_service, tmp_path):
        from repro.snapshot import SnapshotStore
        from repro.wal import Compactor
        wal_service.compactor = Compactor(
            wal_service.wal, SnapshotStore(tmp_path / "store"))
        _status, health = call(wal_service, "GET", "/healthz")
        compaction = health["wal"]["compaction"]
        assert compaction["degraded"] is False
        assert health["status"] == "ok"
        wal_service.compactor.degraded = True
        _status, health = call(wal_service, "GET", "/healthz")
        assert health["wal"]["compaction"]["degraded"] is True
        assert health["status"] == "degraded"

    def test_metrics_wal_families(self, wal_service):
        call(wal_service, "POST", "/admin/delta", GOOD_DELTA)
        _s, _t, text, _c = wal_service.handle("GET", "/metrics", b"")
        assert "repro_wal_appends_total 1" in text
        assert "repro_wal_lsn 1" in text
        assert "repro_wal_pending_deltas 1" in text
        assert "repro_wal_bytes" in text
        assert "repro_wal_truncations_total 0" in text

    def test_metrics_compaction_families(self, wal_service,
                                         tmp_path):
        from repro.snapshot import SnapshotStore
        from repro.wal import Compactor
        wal_service.compactor = Compactor(
            wal_service.wal, SnapshotStore(tmp_path / "store"))
        _s, _t, text, _c = wal_service.handle("GET", "/metrics", b"")
        assert "repro_wal_compactions_total 0" in text
        assert "repro_wal_compaction_failures_total 0" in text
        assert "repro_wal_compaction_degraded 0" in text
