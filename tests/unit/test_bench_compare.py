"""Unit tests for the benchmark regression guard (tools/bench_compare)."""

import json
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402


def _write(path, medians):
    payload = {"benchmarks": [
        {"name": name, "stats": {"median": median}}
        for name, median in medians.items()]}
    path.write_text(json.dumps(payload))
    return path


def test_no_regression_passes(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"q1": 0.10, "q2": 0.50})
    fresh = _write(tmp_path / "fresh.json", {"q1": 0.11, "q2": 0.40})
    code = bench_compare.main([str(fresh), "--baseline", str(base)])
    assert code == 0
    assert "OK" in capsys.readouterr().out


def test_regression_beyond_threshold_fails(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"q1": 0.10, "q2": 0.50})
    fresh = _write(tmp_path / "fresh.json", {"q1": 0.14, "q2": 0.50})
    code = bench_compare.main([str(fresh), "--baseline", str(base)])
    assert code == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "q1" in captured.err


def test_threshold_flag_loosens_the_gate(tmp_path):
    base = _write(tmp_path / "base.json", {"q1": 0.10})
    fresh = _write(tmp_path / "fresh.json", {"q1": 0.14})
    code = bench_compare.main([str(fresh), "--baseline", str(base),
                               "--threshold", "0.5"])
    assert code == 0


def test_exactly_at_threshold_passes(tmp_path):
    base = _write(tmp_path / "base.json", {"q1": 0.10})
    fresh = _write(tmp_path / "fresh.json", {"q1": 0.125})
    code = bench_compare.main([str(fresh), "--baseline", str(base)])
    assert code == 0


def test_new_and_missing_benchmarks_reported_not_fatal(tmp_path,
                                                       capsys):
    base = _write(tmp_path / "base.json", {"q1": 0.10, "old": 0.2})
    fresh = _write(tmp_path / "fresh.json", {"q1": 0.10, "new": 0.3})
    code = bench_compare.main([str(fresh), "--baseline", str(base)])
    assert code == 0
    out = capsys.readouterr().out
    assert "only in baseline" in out and "old" in out
    assert "new benchmark" in out


def test_disjoint_or_missing_files_exit_2(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"q1": 0.10})
    fresh = _write(tmp_path / "fresh.json", {"other": 0.10})
    assert bench_compare.main(
        [str(fresh), "--baseline", str(base)]) == 2
    assert bench_compare.main(
        [str(tmp_path / "nope.json"), "--baseline", str(base)]) == 2
    empty = _write(tmp_path / "empty.json", {})
    assert bench_compare.main(
        [str(empty), "--baseline", str(base)]) == 2
    capsys.readouterr()


def test_committed_baseline_compares_against_itself(capsys):
    baseline = Path(__file__).resolve().parents[2] / \
        "bench_results.json"
    code = bench_compare.main([str(baseline)])
    assert code == 0
    capsys.readouterr()
