"""Unit tests for the snapshot format, store, and engine lifecycle.

Covers the PR's acceptance properties at the unit level:

* a snapshot round-trips bit-identically — rewriting the same content
  reproduces the same per-section checksums and the same id, with or
  without gzip;
* every flipped byte is rejected at load/verify time with the typed
  error taxonomy;
* the store publishes atomically, resolves ``latest``, lists and
  prunes; republishing identical content is idempotent;
* the engine adopts the snapshot id as its generation, swaps
  atomically, and treats a content-identical swap as a no-op (cache
  stays warm).
"""

import json

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine
from repro.exceptions import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    SnapshotVersionError,
)
from repro.snapshot import (
    MANIFEST_NAME,
    SnapshotStore,
    load_snapshot,
    locate_snapshot,
    read_manifest,
    verify_snapshot,
    write_snapshot,
)
from repro.text.inverted_index import (
    CommunityIndex,
    EdgeInvertedIndex,
    NodeInvertedIndex,
)


@pytest.fixture()
def fig4_index(fig4):
    return CommunityIndex.build(fig4, FIG4_RMAX)


def _assert_same_graph(a, b):
    assert a.n == b.n and a.m == b.m
    assert list(a.graph.edges()) == list(b.graph.edges())
    for u in range(a.n):
        assert a.keywords_of(u) == b.keywords_of(u)
        assert a.label_of(u) == b.label_of(u)
        assert a.provenance_of(u) == b.provenance_of(u)


def _assert_same_index(a, b):
    assert a.radius == b.radius
    assert a.node_index.keywords() == b.node_index.keywords()
    assert a.edge_index.keywords() == b.edge_index.keywords()
    for kw in a.node_index.keywords():
        assert a.node_index.nodes(kw) == b.node_index.nodes(kw)
    for kw in a.edge_index.keywords():
        assert a.edge_index.edges(kw) == b.edge_index.edges(kw)


class TestFormat:
    def test_round_trip(self, fig4, fig4_index, tmp_path):
        snap = write_snapshot(tmp_path / "s", fig4, fig4_index,
                              provenance={"dataset": "fig4"})
        loaded = load_snapshot(tmp_path / "s")
        assert loaded.id == snap.id
        assert loaded.provenance == {"dataset": "fig4"}
        _assert_same_graph(loaded.dbg, fig4)
        _assert_same_index(loaded.index, fig4_index)
        # Postings reference the *loaded* graph, not the original.
        assert loaded.index.dbg is loaded.dbg

    def test_rewrite_is_bit_identical(self, fig4, fig4_index,
                                      tmp_path):
        """Same content -> same id and same section checksums."""
        a = write_snapshot(tmp_path / "a", fig4, fig4_index)
        b = write_snapshot(tmp_path / "b", fig4, fig4_index)
        assert a.id == b.id
        shas_a = {k: v["sha256"] for k, v in a.manifest["sections"].items()}
        shas_b = {k: v["sha256"] for k, v in b.manifest["sections"].items()}
        assert shas_a == shas_b
        for name in ("graph.bin", "nodes.json", "index.json",
                     "postings.bin"):
            assert (tmp_path / "a" / name).read_bytes() \
                == (tmp_path / "b" / name).read_bytes()

    def test_gzip_preserves_id_and_content(self, fig4, fig4_index,
                                           tmp_path):
        plain = write_snapshot(tmp_path / "p", fig4, fig4_index)
        gz = write_snapshot(tmp_path / "z", fig4, fig4_index,
                            compress=True)
        assert gz.id == plain.id      # checksums over uncompressed
        assert (tmp_path / "z" / "graph.bin.gz").exists()
        loaded = load_snapshot(tmp_path / "z")
        _assert_same_graph(loaded.dbg, fig4)
        _assert_same_index(loaded.index, fig4_index)

    def test_graph_only_snapshot(self, fig4, tmp_path):
        snap = write_snapshot(tmp_path / "g", fig4)
        loaded = load_snapshot(tmp_path / "g")
        assert loaded.index is None
        assert loaded.radius is None
        assert not snap.manifest["has_index"]
        _assert_same_graph(loaded.dbg, fig4)

    def test_refuses_to_overwrite(self, fig4, tmp_path):
        write_snapshot(tmp_path / "s", fig4)
        with pytest.raises(SnapshotFormatError):
            write_snapshot(tmp_path / "s", fig4)

    def test_id_ignores_created_at(self, fig4, fig4_index, tmp_path):
        snap = write_snapshot(tmp_path / "s", fig4, fig4_index)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["created_at"] = "1999-01-01T00:00:00Z"
        manifest_path.write_text(json.dumps(manifest))
        assert load_snapshot(tmp_path / "s").id == snap.id


class TestCorruption:
    """The typed error taxonomy, one class per failure mode."""

    @pytest.fixture()
    def snap_dir(self, fig4, fig4_index, tmp_path):
        write_snapshot(tmp_path / "s", fig4, fig4_index)
        return tmp_path / "s"

    @pytest.mark.parametrize("section", ["graph.bin", "nodes.json",
                                         "index.json", "postings.bin"])
    def test_flipped_byte_rejected(self, snap_dir, section):
        target = snap_dir / section
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(SnapshotIntegrityError):
            verify_snapshot(snap_dir)

    def test_truncated_section(self, snap_dir):
        target = snap_dir / "postings.bin"
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(snap_dir)

    def test_missing_section_file(self, snap_dir):
        (snap_dir / "graph.bin").unlink()
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(snap_dir)

    def test_wrong_version(self, snap_dir):
        manifest_path = snap_dir / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotVersionError):
            read_manifest(snap_dir)

    def test_foreign_manifest(self, snap_dir):
        (snap_dir / MANIFEST_NAME).write_text('{"format": "other"}')
        with pytest.raises(SnapshotFormatError):
            read_manifest(snap_dir)

    def test_unparseable_manifest(self, snap_dir):
        (snap_dir / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(SnapshotFormatError):
            read_manifest(snap_dir)

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError):
            load_snapshot(tmp_path / "nope")

    def test_taxonomy_roots(self):
        """Every snapshot failure is catchable as SnapshotError."""
        for cls in (SnapshotFormatError, SnapshotVersionError,
                    SnapshotIntegrityError, SnapshotNotFoundError):
            assert issubclass(cls, SnapshotError)
        assert issubclass(SnapshotVersionError, SnapshotFormatError)

    def test_skip_verify_still_catches_truncation(self, snap_dir):
        """verify=False skips checksums but not structural checks."""
        target = snap_dir / "graph.bin"
        target.write_bytes(target.read_bytes()[:-16])
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(snap_dir, verify=False)


class TestEdgeOnlyKeywords:
    """Regression: edge-index keywords absent from the node index
    used to be silently dropped by ``save_index`` (which iterated
    only ``node_index.keywords()``)."""

    def test_snapshot_round_trip_keeps_edge_only_keyword(
            self, fig4, tmp_path):
        node_postings = {"a": [0, 1]}
        edge_postings = {"a": [(0, 1, 2.0)],
                         "edgeonly": [(1, 2, 3.0), (2, 3, 1.5)]}
        index = CommunityIndex(
            fig4, NodeInvertedIndex(node_postings),
            EdgeInvertedIndex(edge_postings, 5.0), 5.0, 0.0)
        write_snapshot(tmp_path / "s", fig4, index)
        loaded = load_snapshot(tmp_path / "s").index
        assert "edgeonly" in loaded.edge_index
        assert loaded.edge_index.edges("edgeonly") \
            == [(1, 2, 3.0), (2, 3, 1.5)]

    def test_legacy_save_keeps_edge_only_keyword(self, fig4,
                                                 tmp_path):
        from repro.text.persistence import load_index, save_index

        index = CommunityIndex(
            fig4, NodeInvertedIndex({"a": [0]}),
            EdgeInvertedIndex({"a": [], "ghost": [(0, 1, 1.0)]}, 4.0),
            4.0, 0.0)
        save_index(index, tmp_path / "idx.json")
        loaded = load_index(tmp_path / "idx.json", fig4)
        assert loaded.edge_index.edges("ghost") == [(0, 1, 1.0)]

    def test_explicit_vocabulary_survives(self, fig4, tmp_path):
        """An index built over an explicit vocabulary keeps keywords
        that occur in the vocabulary but not on any node."""
        index = CommunityIndex.build(fig4, FIG4_RMAX,
                                     keywords=["a", "b", "notthere"])
        write_snapshot(tmp_path / "s", fig4, index)
        loaded = load_snapshot(tmp_path / "s").index
        assert "notthere" in loaded.edge_index
        assert loaded.edge_index.edges("notthere") == []


class TestStore:
    def test_publish_resolve_load(self, fig4, fig4_index, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        snap = store.publish(fig4, fig4_index,
                             provenance={"dataset": "fig4"})
        assert store.latest_id() == snap.id
        assert store.resolve() == tmp_path / "store" / snap.id
        loaded = store.load()
        assert loaded.id == snap.id
        _assert_same_graph(loaded.dbg, fig4)

    def test_republish_identical_content_is_idempotent(
            self, fig4, fig4_index, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        first = store.publish(fig4, fig4_index)
        second = store.publish(fig4, fig4_index)
        assert first.id == second.id
        assert len(store.list()) == 1
        # No staging debris left behind.
        leftovers = [p.name for p in (tmp_path / "store").iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []

    def test_latest_moves_to_newer_content(self, fig4, fig4_index,
                                           tmp_path):
        store = SnapshotStore(tmp_path / "store")
        old = store.publish(fig4, None)          # graph-only
        new = store.publish(fig4, fig4_index)    # with index
        assert old.id != new.id
        assert store.latest_id() == new.id
        assert len(store.list()) == 2
        flagged = {m["id"]: m["latest"] for m in store.list()}
        assert flagged == {old.id: False, new.id: True}

    def test_prune_keeps_latest(self, fig4, fig4_index, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        old = store.publish(fig4, None)
        new = store.publish(fig4, fig4_index)
        removed = store.prune(keep=1)
        assert removed == [old.id]
        assert store.latest_id() == new.id
        with pytest.raises(SnapshotNotFoundError):
            store.resolve(old.id)

    def test_empty_store_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with pytest.raises(SnapshotNotFoundError):
            store.latest_id()
        with pytest.raises(SnapshotNotFoundError):
            store.load()

    def test_locate_accepts_dir_and_store(self, fig4, fig4_index,
                                          tmp_path):
        store = SnapshotStore(tmp_path / "store")
        snap = store.publish(fig4, fig4_index)
        direct = write_snapshot(tmp_path / "bare", fig4, fig4_index)
        assert locate_snapshot(tmp_path / "store") \
            == tmp_path / "store" / snap.id
        assert locate_snapshot(direct.path) == direct.path
        with pytest.raises(SnapshotNotFoundError):
            locate_snapshot(tmp_path)


class TestEngineLifecycle:
    def test_from_snapshot_adopts_id_as_generation(
            self, fig4, fig4_index, tmp_path):
        snap = write_snapshot(tmp_path / "s", fig4, fig4_index)
        engine = QueryEngine.from_snapshot(tmp_path / "s")
        assert engine.generation == snap.id
        assert engine.snapshot_id == snap.id
        assert engine.snapshot_loaded_at is not None
        results = engine.top_k_stream(list(FIG4_QUERY),
                                      FIG4_RMAX).take(2)
        assert len(results) == 2

    def test_swap_changes_generation_and_evicts(self, fig4,
                                                fig4_index, tmp_path):
        engine = QueryEngine(fig4)
        engine.build_index(radius=FIG4_RMAX)
        engine.project(list(FIG4_QUERY), FIG4_RMAX)
        assert len(engine.cache) == 1
        snap = write_snapshot(tmp_path / "s", fig4, fig4_index)
        changed = engine.swap_snapshot(load_snapshot(tmp_path / "s"))
        assert changed
        assert engine.generation == snap.id
        assert len(engine.cache) == 0

    def test_swap_to_identical_content_is_noop(self, fig4,
                                               fig4_index, tmp_path):
        write_snapshot(tmp_path / "s", fig4, fig4_index)
        engine = QueryEngine.from_snapshot(tmp_path / "s")
        engine.project(list(FIG4_QUERY), FIG4_RMAX)
        assert len(engine.cache) == 1
        changed = engine.swap_snapshot(load_snapshot(tmp_path / "s"))
        assert not changed
        assert len(engine.cache) == 1     # cache stayed warm

    def test_in_memory_change_diverges_from_snapshot(
            self, fig4, fig4_index, tmp_path):
        write_snapshot(tmp_path / "s", fig4, fig4_index)
        engine = QueryEngine.from_snapshot(tmp_path / "s")
        engine.build_index(radius=FIG4_RMAX)
        assert engine.snapshot_id is None
        assert engine.generation.startswith("g")

    def test_queries_answer_identically_from_snapshot(
            self, fig4, fig4_index, tmp_path):
        from repro.engine.spec import QuerySpec

        write_snapshot(tmp_path / "s", fig4, fig4_index)
        direct = QueryEngine(fig4, fig4_index)
        loaded = QueryEngine.from_snapshot(tmp_path / "s")
        spec = QuerySpec.comm_all(list(FIG4_QUERY), FIG4_RMAX)
        expected = direct.run_all(spec)
        got = loaded.run_all(spec)
        assert [(c.core, c.cost, c.nodes, c.edges) for c in got] \
            == [(c.core, c.cost, c.nodes, c.edges) for c in expected]
