"""Unit tests for row storage and the PK index."""

import pytest

from repro.exceptions import IntegrityError, SchemaError
from repro.rdb.schema import Column, TableSchema
from repro.rdb.table import Row, Table, row_values


@pytest.fixture()
def table():
    return Table(TableSchema(
        "T", [Column("id", int), Column("txt", str, nullable=True)],
        "id"))


@pytest.fixture()
def composite():
    return Table(TableSchema(
        "W", [Column("a", int), Column("b", int)], ("a", "b")))


class TestInsert:
    def test_insert_and_get(self, table):
        table.insert({"id": 1, "txt": "x"})
        row = table.get(1)
        assert row["txt"] == "x"
        assert row.primary_key() == (1,)

    def test_duplicate_pk_rejected(self, table):
        table.insert({"id": 1, "txt": "x"})
        with pytest.raises(IntegrityError):
            table.insert({"id": 1, "txt": "y"})

    def test_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "bogus": 2})

    def test_missing_nullable_defaults_to_none(self, table):
        table.insert({"id": 1})
        assert table.get(1)["txt"] is None

    def test_missing_required_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"txt": "x"})

    def test_type_checked(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": "not an int"})


class TestLookup:
    def test_get_missing_returns_none(self, table):
        assert table.get(42) is None

    def test_contains_pk(self, table):
        table.insert({"id": 7})
        assert table.contains_pk(7)
        assert not table.contains_pk(8)

    def test_composite_pk_lookup(self, composite):
        composite.insert({"a": 1, "b": 2})
        assert composite.contains_pk((1, 2))
        assert not composite.contains_pk((2, 1))
        assert composite.get((1, 2)).primary_key() == (1, 2)

    def test_wrong_pk_arity_rejected(self, composite):
        with pytest.raises(SchemaError):
            composite.get(1)

    def test_scan_insertion_order(self, table):
        for i in (3, 1, 2):
            table.insert({"id": i})
        assert [r["id"] for r in table.scan()] == [3, 1, 2]

    def test_select_predicate(self, table):
        for i in range(5):
            table.insert({"id": i})
        assert [r["id"] for r in table.select(lambda r: r["id"] % 2 == 0)] \
            == [0, 2, 4]

    def test_len(self, table):
        assert len(table) == 0
        table.insert({"id": 1})
        assert len(table) == 1


class TestRow:
    def test_mapping_protocol(self, table):
        table.insert({"id": 1, "txt": "x"})
        row = table.get(1)
        assert isinstance(row, Row)
        assert dict(row) == {"id": 1, "txt": "x"}
        assert len(row) == 2
        assert "id=1" in repr(row)

    def test_row_values_helper(self, table):
        for i in range(3):
            table.insert({"id": i})
        assert row_values(list(table.scan()), "id") == [0, 1, 2]
