"""Unit tests for :class:`repro.engine.stream.ProjectedTopKStream`.

The stream is what session leases hand out, so its edge behaviour
(k=0, exhaustion mid-take, takes after exhaustion) is the service's
edge behaviour. Exercised directly here, not through HTTP.
"""

import pytest

from repro.core.community import community_sort_key
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryContext
from repro.exceptions import QueryError

#: fig4 has exactly this many communities for the canonical query.
FIG4_TOTAL = 5


@pytest.fixture()
def search(fig4):
    s = CommunitySearch(fig4)
    s.build_index(radius=FIG4_RMAX)
    return s


@pytest.fixture()
def stream(search):
    return search.top_k_stream(list(FIG4_QUERY), FIG4_RMAX)


class TestTakeEdgeCases:
    def test_take_zero_returns_empty_and_consumes_nothing(self, stream):
        assert stream.take(0) == []
        assert stream.emitted == 0
        assert not stream.exhausted
        # The stream is untouched: the full ranking still comes out.
        assert len(stream.take(FIG4_TOTAL)) == FIG4_TOTAL

    def test_take_negative_rejected(self, stream):
        with pytest.raises(QueryError):
            stream.take(-1)
        assert stream.emitted == 0

    def test_exhaustion_mid_take_returns_short_batch(self, stream):
        first = stream.take(3)
        assert len(first) == 3
        # Ask for more than remain: get exactly the remainder.
        rest = stream.take(100)
        assert len(rest) == FIG4_TOTAL - 3
        assert stream.exhausted
        assert stream.emitted == FIG4_TOTAL

    def test_repeated_take_after_exhaustion_is_empty(self, stream):
        stream.take(FIG4_TOTAL)
        assert stream.exhausted
        for _ in range(3):
            assert stream.take(10) == []
        assert stream.emitted == FIG4_TOTAL

    def test_next_community_none_after_exhaustion(self, stream):
        stream.take(FIG4_TOTAL)
        assert stream.next_community() is None
        assert stream.next_community() is None

    def test_more_continues_where_take_stopped(self, stream):
        first = stream.take(2)
        rest = stream.more(FIG4_TOTAL)
        assert len(first) == 2
        assert len(rest) == FIG4_TOTAL - 2
        assert stream.exhausted
        # No answer is repeated across the batches.
        cores = [c.core for c in first + rest]
        assert len(set(cores)) == len(cores)


class TestRankingAndTranslation:
    def test_batches_concatenate_to_full_ranking(self, search, stream):
        batches = stream.take(2) + stream.more(2) + stream.more(10)
        expected = search.top_k(list(FIG4_QUERY), FIG4_TOTAL,
                                FIG4_RMAX)
        assert [(c.core, c.cost) for c in batches] \
            == [(c.core, c.cost) for c in expected]
        assert batches == sorted(batches, key=community_sort_key)

    def test_iteration_stops_at_exhaustion(self, stream):
        assert len(list(stream)) == FIG4_TOTAL
        assert stream.exhausted

    def test_translated_ids_are_gd_ids(self, fig4, stream):
        for community in stream.take(FIG4_TOTAL):
            assert all(0 <= u < fig4.n for u in community.nodes)
            # Edges are re-induced against G_D between community nodes.
            nodes = set(community.nodes)
            assert all(u in nodes and v in nodes
                       for u, v, _ in community.edges)

    def test_context_stops_charging_after_exhaustion(self, search):
        ctx = QueryContext()
        stream = search.top_k_stream(list(FIG4_QUERY), FIG4_RMAX,
                                     context=ctx)
        stream.take(FIG4_TOTAL)
        assert ctx.counter("communities") == FIG4_TOTAL
        stream.take(5)                    # all empty pops
        assert ctx.counter("communities") == FIG4_TOTAL
