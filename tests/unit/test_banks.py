"""Unit tests for the BANKS backward expanding search."""

import pytest

from repro.core.banks import backward_search, banks_top_k
from repro.core.getcommunity import find_centers
from repro.datasets.paper_example import (
    FIG1_QUERY,
    FIG4_QUERY,
    FIG4_RMAX,
    figure1_graph,
    node_id,
)
from repro.exceptions import QueryError


class TestFig1:
    def test_best_answer_matches_t1(self):
        dbg = figure1_graph()
        best = banks_top_k(dbg, list(FIG1_QUERY), 1)[0]
        assert dbg.label_of(best.root) in ("paper1", "paper2")
        assert best.weight == 3.0

    def test_roots_reach_all_keywords(self):
        dbg = figure1_graph()
        for answer in backward_search(dbg, list(FIG1_QUERY),
                                      max_score=10.0):
            labels = {dbg.label_of(u) for u in answer.nodes}
            assert any("Smith" in lbl for lbl in labels)
            assert "Kate Green" in labels

    def test_trees_are_trees(self):
        dbg = figure1_graph()
        for answer in backward_search(dbg, list(FIG1_QUERY),
                                      max_score=10.0):
            assert len(answer.edges) == len(answer.nodes) - 1
            # one parent per non-root node (branching roots are fine)
            targets = [v for _, v, _ in answer.edges]
            assert len(targets) == len(set(targets))
            assert answer.root not in targets


class TestFig4:
    def test_roots_are_community_centers(self, fig4):
        """BANKS roots coincide with community centers (the paper's
        structural correspondence)."""
        for answer in backward_search(fig4, list(FIG4_QUERY),
                                      max_score=FIG4_RMAX):
            centers = find_centers(fig4.graph, answer.core, FIG4_RMAX)
            assert answer.root in centers
            assert centers[answer.root] == pytest.approx(answer.weight)

    def test_one_answer_per_root(self, fig4):
        answers = list(backward_search(fig4, list(FIG4_QUERY),
                                       max_score=FIG4_RMAX))
        roots = [a.root for a in answers]
        assert len(roots) == len(set(roots))

    def test_all_seven_centers_found(self, fig4):
        # the intersection N1 ∩ N2 ∩ N3 of the paper has 7 nodes; each
        # is a root candidate (some may degenerate)
        answers = list(backward_search(fig4, list(FIG4_QUERY),
                                       max_score=FIG4_RMAX))
        expected = {node_id(x)
                    for x in ("v1", "v4", "v5", "v7", "v9", "v11",
                              "v12")}
        assert {a.root for a in answers} <= expected
        assert len(answers) >= 5

    def test_best_score_matches_best_community_cost(self, fig4):
        best = banks_top_k(fig4, list(FIG4_QUERY), 1,
                           max_score=FIG4_RMAX)[0]
        assert best.weight == 7.0  # R3's cost, rooted at v4

    def test_max_score_prunes(self, fig4):
        wide = list(backward_search(fig4, list(FIG4_QUERY),
                                    max_score=8.0))
        narrow = list(backward_search(fig4, list(FIG4_QUERY),
                                      max_score=4.0))
        assert len(narrow) < len(wide)


class TestEdgeCases:
    def test_missing_keyword_yields_nothing(self, fig4):
        assert list(backward_search(fig4, ["a", "missing"])) == []

    def test_k_validation(self, fig4):
        with pytest.raises(QueryError):
            banks_top_k(fig4, ["a"], 0)

    def test_single_keyword(self, fig4):
        answers = banks_top_k(fig4, ["a"], 5, max_score=FIG4_RMAX)
        assert answers
        assert answers[0].weight == 0.0  # the keyword node itself
