"""Replica-set failover semantics, threaded and async, no sockets.

Fake clients stand in for :class:`ServiceClient`, so every branch of
the sticky-cursor contract is driven deterministically: retryable
failures (429/503) move to the next sibling and promote it on
success, deterministic 4xx propagate immediately, an exhausted set
re-raises the last failure, and the async flavor matches the
threaded one decision for decision.
"""

import asyncio

import pytest

from repro.exceptions import ServiceError
from repro.service.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    ServiceUnreachable,
)
from repro.shard.aio import AsyncReplicaSet
from repro.shard.transport import ReplicaSet, parse_shard_urls


class FakeClient:
    """Scripted replica: answers or raises per configured plan."""

    def __init__(self, url):
        self.url = url
        self.calls = 0
        self.plan = []           # list of results / exceptions
        self.closed = False

    def script(self, *outcomes):
        self.plan = list(outcomes)
        return self

    def step(self):
        self.calls += 1
        outcome = self.plan.pop(0) if self.plan else {"ok": self.url}
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def close(self):
        self.closed = True

    async def aclose(self):
        self.closed = True


def _set(urls, **kwargs):
    return ReplicaSet(0, urls, client_factory=FakeClient, **kwargs)


class TestParseShardUrls:
    def test_single_urls(self):
        assert parse_shard_urls(["http://a:1", "http://b:2/"]) \
            == [["http://a:1"], ["http://b:2"]]

    def test_comma_separated_replicas(self):
        assert parse_shard_urls(["http://a:1, http://b:2"]) \
            == [["http://a:1", "http://b:2"]]

    def test_empty_spec_rejected(self):
        with pytest.raises(ServiceError, match="shard URL #1"):
            parse_shard_urls(["http://a:1", " ,, "])


class TestReplicaSetFailover:
    def test_single_replica_passthrough(self):
        replicas = _set(["http://a:1"])
        assert replicas.call(lambda c: c.step()) == {"ok": "http://a:1"}
        assert replicas.failovers == 0

    def test_retryable_failure_fails_over_and_promotes(self):
        replicas = _set(["http://a:1", "http://b:2"])
        replicas.clients[0].script(ServiceUnreachable("down"))
        assert replicas.call(lambda c: c.step()) == {"ok": "http://b:2"}
        assert replicas.failovers == 1
        assert replicas.active_url == "http://b:2"
        # Sticky: the next call starts at the promoted sibling.
        assert replicas.call(lambda c: c.step()) == {"ok": "http://b:2"}
        assert replicas.failovers == 1

    @pytest.mark.parametrize("error", [Overloaded("shed"),
                                       DeadlineExceeded("slow")])
    def test_shedding_statuses_fail_over(self, error):
        replicas = _set(["http://a:1", "http://b:2"])
        replicas.clients[0].script(error)
        assert replicas.call(lambda c: c.step())["ok"] == "http://b:2"
        assert replicas.failovers == 1

    def test_deterministic_4xx_propagates_immediately(self):
        replicas = _set(["http://a:1", "http://b:2"])
        replicas.clients[0].script(BadRequest("no such keyword"))
        with pytest.raises(BadRequest):
            replicas.call(lambda c: c.step())
        assert replicas.failovers == 0
        assert replicas.clients[1].calls == 0

    def test_exhausted_set_reraises_last_failure(self):
        replicas = _set(["http://a:1", "http://b:2"])
        replicas.clients[0].script(ServiceUnreachable("a down"))
        replicas.clients[1].script(ServiceUnreachable("b down"))
        with pytest.raises(ServiceUnreachable, match="b down"):
            replicas.call(lambda c: c.step())
        # The dead-end traversal counts one failover (a -> b); the
        # final failure on the last sibling is not a failover.
        assert replicas.failovers == 1
        assert replicas.clients[0].calls == 1
        assert replicas.clients[1].calls == 1

    def test_on_failover_callback_reports_urls(self):
        seen = []
        replicas = ReplicaSet(
            3, ["http://a:1", "http://b:2"],
            client_factory=FakeClient,
            on_failover=lambda s, frm, to: seen.append((s, frm, to)))
        replicas.clients[0].script(ServiceUnreachable("down"))
        replicas.call(lambda c: c.step())
        assert seen == [(3, "http://a:1", "http://b:2")]

    def test_close_releases_every_client(self):
        replicas = _set(["http://a:1", "http://b:2"])
        replicas.close()
        assert all(c.closed for c in replicas.clients)

    def test_empty_url_list_rejected(self):
        with pytest.raises(ServiceError, match="no replica URLs"):
            ReplicaSet(0, [], client_factory=FakeClient)


class TestAsyncReplicaSet:
    """The event-loop flavor makes the same decisions."""

    def _run(self, coro):
        return asyncio.run(coro)

    def _aset(self, urls, **kwargs):
        return AsyncReplicaSet(0, urls, client_factory=FakeClient,
                               **kwargs)

    @staticmethod
    async def _step(client):
        """Async shim over the scripted fake."""
        return client.step()

    def test_failover_promotes_sibling(self):
        replicas = self._aset(["http://a:1", "http://b:2"])
        replicas.clients[0].script(ServiceUnreachable("down"))
        result = self._run(replicas.call(self._step))
        assert result == {"ok": "http://b:2"}
        assert replicas.failovers == 1
        assert replicas.active_url == "http://b:2"

    def test_deterministic_4xx_propagates(self):
        replicas = self._aset(["http://a:1", "http://b:2"])
        replicas.clients[0].script(BadRequest("bad"))
        with pytest.raises(BadRequest):
            self._run(replicas.call(self._step))
        assert replicas.clients[1].calls == 0

    def test_exhausted_set_reraises(self):
        replicas = self._aset(["http://a:1", "http://b:2"])
        replicas.clients[0].script(ServiceUnreachable("a down"))
        replicas.clients[1].script(ServiceUnreachable("b down"))
        with pytest.raises(ServiceUnreachable, match="b down"):
            self._run(replicas.call(self._step))

    def test_aclose_releases_every_client(self):
        replicas = self._aset(["http://a:1"])
        self._run(replicas.aclose())
        assert all(c.closed for c in replicas.clients)
