"""Additional reporting/rendering edge cases."""

import math

from repro.bench.harness import RunResult
from repro.bench.reporting import counts_note, format_table, series_table


def run(seconds=1.0, communities=5, **kwargs):
    return RunResult("d", "pd", "all", ["x"], 1.0, seconds,
                     communities, **kwargs)


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert lines[0].strip().startswith("a")
        assert len(lines) == 2  # header + rule

    def test_mixed_types(self):
        text = format_table(["x"], [[1], ["two"], [3.14159]])
        assert "3.142" in text and "two" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["aa", 1], ["b", 22]])
        lines = text.splitlines()
        assert len({line.index("v") if "v" in line else None
                    for line in lines[:1]}) == 1


class TestSeriesTable:
    def test_nan_for_missing_memory(self):
        results = {"pd": [run(peak_kb=None)]}
        text = series_table("T", "x", [1], results, metric="peak_kb")
        assert "nan" in text

    def test_multiple_x_values(self):
        results = {"pd": [run(seconds=1.0), run(seconds=2.0)]}
        text = series_table("T", "x", [1, 2], results,
                            metric="seconds", unit="s")
        assert "1.000" in text and "2.000" in text


class TestCountsNote:
    def test_marks_both_flags(self):
        results = {
            "bu": [run(capped=True, timed_out=True)],
            "pd": [run()],
        }
        note = counts_note(results)
        assert "5+!" in note
        assert "bu" in note and "pd" in note


class TestRunResult:
    def test_avg_delay(self):
        assert run(seconds=1.0, communities=4).avg_delay_ms == 250.0

    def test_avg_delay_nan_when_zero(self):
        assert math.isnan(run(communities=0).avg_delay_ms)
