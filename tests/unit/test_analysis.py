"""Unit tests for the analysis subpackage."""

import pytest

from repro.analysis import (
    community_to_dot,
    degree_statistics,
    profile_database,
    profile_graph,
    profile_results,
    tree_to_dot,
)
from repro.analysis.graph_stats import (
    entropy_of_in_degrees,
    in_degree_histogram,
    keyword_frequency_table,
)
from repro.analysis.result_stats import (
    cost_histogram,
    keyword_node_usage,
    overlap_matrix,
)
from repro.core import all_communities, enumerate_trees
from repro.datasets.paper_example import (
    FIG1_QUERY,
    FIG4_QUERY,
    FIG4_RMAX,
    figure1_graph,
)


@pytest.fixture(scope="module")
def fig4_results(fig4):
    return all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX)


class TestGraphStats:
    def test_degree_statistics(self, fig4):
        stats = degree_statistics(fig4)
        assert stats["nodes"] == 13.0
        assert stats["edges"] == 19.0
        assert stats["avg_out_degree"] == pytest.approx(19 / 13)
        assert stats["max_in_degree"] >= 3
        assert stats["max_edge_weight"] == 8.0

    def test_profile_database(self, tiny_dblp):
        db, dbg = tiny_dblp
        profile = profile_database("dblp", db, dbg)
        assert profile.total_tuples == db.total_rows()
        assert profile.directed_edges == dbg.m
        assert "Write per Author" in profile.link_ratios
        assert "Write per Paper" in profile.link_ratios
        # the paper's two averages, at the synthetic scale
        assert 1.5 < profile.link_ratios["Write per Paper"] < 3.5
        text = profile.render()
        assert "tuples" in text and "references" in text

    def test_profile_graph_without_db(self, fig4):
        profile = profile_graph("fig4", fig4)
        assert profile.total_tuples == 13
        assert profile.table_rows == {}

    def test_in_degree_histogram_covers_all_nodes(self, fig4):
        histogram = in_degree_histogram(fig4)
        assert sum(count for _, count in histogram) == fig4.n

    def test_keyword_frequency_table(self, fig4):
        rows = keyword_frequency_table(fig4, ["a", "b", "c", "zz"])
        as_dict = {kw: (count, kwf) for kw, count, kwf in rows}
        assert as_dict["a"][0] == 2
        assert as_dict["c"][0] == 4
        assert as_dict["zz"][0] == 0
        assert as_dict["b"][1] == pytest.approx(2 / 13)

    def test_entropy_nonnegative(self, fig4):
        assert entropy_of_in_degrees(fig4) >= 0.0


class TestResultStats:
    def test_profile_results(self, fig4_results):
        profile = profile_results(fig4_results)
        assert profile.count == 5
        assert profile.multi_center == 2  # R3 and R5
        assert profile.min_cost == 7.0
        assert profile.max_cost == 15.0
        assert 0 < profile.multi_center_rate < 1
        assert "5 communities" in profile.render()

    def test_profile_empty(self):
        profile = profile_results([])
        assert profile.count == 0
        assert profile.render() == "no communities"

    def test_cost_histogram(self, fig4_results):
        histogram = cost_histogram(fig4_results, bins=4)
        assert sum(count for _, count in histogram) == 5

    def test_cost_histogram_degenerate(self, fig4_results):
        single = [fig4_results[0]]
        assert cost_histogram(single) == [("7", 1)]

    def test_overlap_matrix_diagonal_is_one(self, fig4_results):
        matrix = overlap_matrix(fig4_results, top=3)
        assert all(matrix[i][i] == 1.0 for i in range(3))
        assert all(0.0 <= v <= 1.0 for row in matrix for v in row)

    def test_keyword_node_usage(self, fig4_results):
        usage = keyword_node_usage(fig4_results)
        # v8 (id 7) appears in 3 of the 5 cores
        assert usage[7] == 3


class TestDotExport:
    def test_community_dot_structure(self, fig4, fig4_results):
        dot = community_to_dot(fig4_results[0], fig4)
        assert dot.startswith("digraph")
        assert "peripheries=2" in dot     # knodes
        assert "fillcolor" in dot         # centers
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_community_dot_without_labels(self, fig4_results):
        dot = community_to_dot(fig4_results[0])
        assert 'label="v' in dot

    def test_tree_dot(self):
        dbg = figure1_graph()
        tree = enumerate_trees(dbg, list(FIG1_QUERY), 8.0)[0]
        dot = tree_to_dot(tree, dbg)
        assert "digraph" in dot
        assert "John Smith" in dot
        assert "fillcolor" in dot  # root

    def test_dot_escaping(self, fig4_results):
        from repro.analysis.dot import _escape
        assert _escape('a"b') == 'a\\"b'
        assert _escape("a\\b") == "a\\\\b"
