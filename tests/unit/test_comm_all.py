"""Unit tests for PDall (Algorithm 1)."""

import pytest

from repro.core.comm_all import (
    AllCommunitiesEnumerator,
    all_communities,
    enumerate_all,
    resolve_keyword_nodes,
)
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    node_label,
)
from repro.exceptions import QueryError
from repro.graph.generators import line_database_graph


class TestResolveKeywordNodes:
    def test_scan_fallback(self, fig4):
        lists = resolve_keyword_nodes(fig4, ["a"], None)
        assert [node_label(u) for u in lists[0]] == ["v4", "v13"]

    def test_explicit_lists_used(self, fig4):
        lists = resolve_keyword_nodes(fig4, ["a"], [[3]])
        assert lists == [[3]]

    def test_empty_query_rejected(self, fig4):
        with pytest.raises(QueryError):
            resolve_keyword_nodes(fig4, [], None)

    def test_list_count_mismatch_rejected(self, fig4):
        with pytest.raises(QueryError):
            resolve_keyword_nodes(fig4, ["a", "b"], [[1]])


class TestEnumeration:
    def test_fig4_complete_and_duplication_free(self, fig4):
        results = all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX)
        cores = [c.core for c in results]
        assert len(cores) == 5
        assert len(set(cores)) == 5

    def test_first_answer_is_best(self, fig4):
        # Algorithm 1 line 5 finds the *best* first core.
        results = all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert results[0].cost == min(c.cost for c in results)
        assert results[0].cost == 7.0

    def test_streaming_is_lazy(self, fig4):
        it = enumerate_all(fig4, list(FIG4_QUERY), FIG4_RMAX)
        first = next(it)
        assert first.cost == 7.0

    def test_emitted_counter(self, fig4):
        enum = AllCommunitiesEnumerator(fig4, list(FIG4_QUERY),
                                        FIG4_RMAX)
        list(iter(enum))
        assert enum.emitted == 5

    def test_missing_keyword_yields_nothing(self, fig4):
        assert all_communities(fig4, ["a", "nope"], FIG4_RMAX) == []

    def test_negative_rmax_rejected(self, fig4):
        with pytest.raises(QueryError):
            AllCommunitiesEnumerator(fig4, ["a"], -2.0)

    def test_single_keyword_enumerates_each_knode(self):
        dbg = line_database_graph(
            [1.0, 1.0], [{"a"}, set(), {"a"}])
        results = all_communities(dbg, ["a"], 2.0)
        assert sorted(c.core for c in results) == [(0,), (2,)]

    def test_rmax_zero_keyword_nodes_only(self):
        dbg = line_database_graph([1.0], [{"a"}, {"b"}])
        results = all_communities(dbg, ["a", "b"], 0.0)
        assert results == []  # no node contains both

    def test_rmax_zero_same_node(self):
        dbg = line_database_graph([1.0], [{"a", "b"}, set()])
        results = all_communities(dbg, ["a", "b"], 0.0)
        assert [c.core for c in results] == [(0, 0)]
        assert results[0].cost == 0.0

    def test_repeated_keyword_in_query(self, fig4):
        # querying {a, a} enumerates ordered pairs of a-nodes that
        # share a center
        results = all_communities(fig4, ["a", "a"], FIG4_RMAX)
        cores = {c.core for c in results}
        assert all(
            fig4.keywords_of(u) >= {"a"}
            for core in cores for u in core)
        assert len(cores) == len(results)
