"""Unit tests for the delta write-ahead log (:mod:`repro.wal`).

Covers the frame codec and its recovery taxonomy (torn tail vs real
corruption), the :class:`WriteAheadLog` append path under each fsync
policy, truncation after a checkpoint, the linear-history replay
helpers (``folded_lsn`` / ``pending_deltas`` / ``protected_snapshots``),
engine replay, and the :func:`parse_delta` boundary validation that
backs the ``POST /admin/delta`` 400s.
"""

import struct

import pytest

from repro.datasets.paper_example import FIG4_RMAX, figure4_graph
from repro.engine import QueryEngine
from repro.exceptions import DeltaValidationError, WalCorruptionError, \
    WalError
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import GraphDelta
from repro.wal import (
    HEADER,
    WalTruncationWarning,
    WriteAheadLog,
    base_snapshot,
    decode_payload,
    delta_from_wire,
    delta_to_wire,
    encode_record,
    folded_lsn,
    parse_delta,
    pending_deltas,
    protected_snapshots,
    read_wal,
    replay,
    scan_records,
)

DELTA = GraphDelta(new_nodes=[({"x"}, "n0", ("t", 1))],
                   new_edges=[(0, 1, 2.5)])


def wal_at(tmp_path, name="test.wal", **kwargs):
    return WriteAheadLog(tmp_path / name, **kwargs)


# ----------------------------------------------------------------------
# frame codec + scan
# ----------------------------------------------------------------------
class TestCodec:
    def test_round_trip(self):
        payload = {"type": "delta", "lsn": 7, "base": "snap",
                   "delta": delta_to_wire(DELTA)}
        frame = encode_record(payload)
        length, _crc = HEADER.unpack_from(frame, 0)
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size:], 0) == payload

    def test_scan_clean_log(self):
        data = b"".join(encode_record({"type": "compact", "lsn": i,
                                       "base": None, "through": 0})
                        for i in (1, 2, 3))
        scan = scan_records(data)
        assert [r["lsn"] for r in scan.records] == [1, 2, 3]
        assert scan.good_bytes == len(data)
        assert scan.torn is None

    def test_short_header_is_torn(self):
        frame = encode_record({"type": "compact", "lsn": 1,
                               "base": None, "through": 0})
        scan = scan_records(frame + b"\x01\x02")
        assert len(scan.records) == 1
        assert scan.good_bytes == len(frame)
        assert scan.torn is not None

    def test_frame_past_eof_is_torn(self):
        frame = encode_record({"type": "compact", "lsn": 1,
                               "base": None, "through": 0})
        scan = scan_records(frame + frame[:-3])
        assert scan.good_bytes == len(frame)
        assert "remain" in scan.torn

    def test_final_crc_failure_is_torn(self):
        good = encode_record({"type": "compact", "lsn": 1,
                              "base": None, "through": 0})
        bad = bytearray(encode_record({"type": "compact", "lsn": 2,
                                       "base": None, "through": 0}))
        bad[-1] ^= 0xFF
        scan = scan_records(good + bytes(bad))
        assert scan.good_bytes == len(good)
        assert "CRC32" in scan.torn

    def test_mid_stream_crc_failure_is_corruption(self):
        first = bytearray(encode_record({"type": "compact", "lsn": 1,
                                         "base": None, "through": 0}))
        second = encode_record({"type": "compact", "lsn": 2,
                                "base": None, "through": 0})
        first[-1] ^= 0xFF
        with pytest.raises(WalCorruptionError, match="intact bytes"):
            scan_records(bytes(first) + second)

    def test_crc_clean_garbage_json_is_corruption(self):
        import zlib
        raw = b"not json at all"
        frame = HEADER.pack(len(raw),
                            zlib.crc32(raw) & 0xFFFFFFFF) + raw
        with pytest.raises(WalCorruptionError, match="not JSON"):
            scan_records(frame)

    def test_unknown_record_type_is_corruption(self):
        frame = encode_record({"type": "mystery", "lsn": 1})
        with pytest.raises(WalCorruptionError, match="recognized"):
            scan_records(frame)

    def test_non_monotonic_lsn_is_corruption(self):
        frames = (encode_record({"type": "compact", "lsn": 2,
                                 "base": None, "through": 0})
                  + encode_record({"type": "compact", "lsn": 2,
                                   "base": None, "through": 0}))
        with pytest.raises(WalCorruptionError, match="spliced"):
            scan_records(frames)

    def test_oversize_record_rejected_at_encode(self):
        from repro.wal import MAX_RECORD_BYTES
        with pytest.raises(ValueError, match="frame bound"):
            encode_record({"type": "delta", "lsn": 1,
                           "pad": "x" * (MAX_RECORD_BYTES + 1)})

    def test_delta_wire_round_trip(self):
        wire = delta_to_wire(DELTA)
        back = delta_from_wire(wire)
        assert back.new_nodes == DELTA.new_nodes
        assert back.new_edges == DELTA.new_edges
        assert delta_to_wire(back) == wire


# ----------------------------------------------------------------------
# WriteAheadLog append path
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_lsn_sequence_and_counters(self, tmp_path):
        with wal_at(tmp_path) as wal:
            assert wal.lsn == 0
            assert wal.append_delta(DELTA, base="s1") == 1
            assert wal.append_delta(DELTA, base="s1") == 2
            assert wal.lsn == 2
            assert wal.appends == 2
            assert wal.pending_count == 2
            assert wal.wal_bytes == wal.path.stat().st_size

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            wal_at(tmp_path, fsync="sometimes")

    def test_always_policy_fsyncs_per_append(self, tmp_path):
        with wal_at(tmp_path, fsync="always") as wal:
            wal.append_delta(DELTA, base=None)
            wal.append_delta(DELTA, base=None)
            assert wal.fsyncs == 2

    def test_batch_policy_fsyncs_every_n(self, tmp_path):
        with wal_at(tmp_path, fsync="batch", batch_records=3) as wal:
            for _ in range(7):
                wal.append_delta(DELTA, base=None)
            assert wal.fsyncs == 2  # after appends 3 and 6

    def test_off_policy_never_fsyncs(self, tmp_path):
        with wal_at(tmp_path, fsync="off") as wal:
            wal.append_delta(DELTA, base=None)
            wal.sync()
            assert wal.fsyncs == 0

    def test_checkpoint_forces_fsync(self, tmp_path):
        with wal_at(tmp_path, fsync="batch", batch_records=100) as wal:
            wal.append_delta(DELTA, base="s1")
            assert wal.fsyncs == 0
            wal.append_checkpoint("s2", 1)
            assert wal.fsyncs >= 1
            assert wal.pending_count == 0

    def test_append_after_close_raises(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append_delta(DELTA, base=None)

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.append_delta(DELTA, base="s1")
            wal.append_delta(DELTA, base="s1")
        with wal_at(tmp_path) as wal:
            assert wal.lsn == 2
            assert wal.append_delta(DELTA, base="s1") == 3
            assert len(wal.records()) == 3

    def test_open_truncates_torn_tail_with_warning(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.append_delta(DELTA, base="s1")
            path = wal.path
        intact = path.stat().st_size
        with open(path, "ab") as handle:  # simulate a torn append
            handle.write(b"\x99" * 7)
        with pytest.warns(WalTruncationWarning, match="torn tail"):
            wal = WriteAheadLog(path)
        assert path.stat().st_size == intact
        assert wal.lsn == 1
        assert wal.truncations == 1
        wal.close()

    def test_open_refuses_mid_stream_damage(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.append_delta(DELTA, base="s1")
            wal.append_delta(DELTA, base="s1")
            path = wal.path
        data = bytearray(path.read_bytes())
        data[HEADER.size + 1] ^= 0xFF  # first record's payload
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(path)

    def test_truncate_drops_folded_prefix(self, tmp_path):
        with wal_at(tmp_path) as wal:
            for _ in range(4):
                wal.append_delta(DELTA, base="s1")
            size_before = wal.wal_bytes
            assert wal.truncate(2) == 2
            assert [r["lsn"] for r in wal.records()] == [3, 4]
            assert wal.wal_bytes < size_before
            assert wal.truncate(2) == 0  # idempotent
            # the suffix survives a reopen byte-identical
            assert wal.append_delta(DELTA, base="s1") == 5
        assert [r["lsn"] for r in read_wal(tmp_path / "test.wal")] \
            == [3, 4, 5]

    def test_as_dict_shape(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.append_delta(DELTA, base="s1")
            info = wal.as_dict()
        assert info["lsn"] == 1
        assert info["pending_deltas"] == 1
        assert info["fsync"] == "always"
        for key in ("path", "bytes", "records", "appends", "fsyncs",
                    "truncations", "replayed"):
            assert key in info


# ----------------------------------------------------------------------
# linear-history helpers
# ----------------------------------------------------------------------
def history(tmp_path):
    """s1 + 2 deltas, checkpoint to s2 folding both, 1 more delta."""
    wal = wal_at(tmp_path, name="history.wal", fsync="off")
    wal.append_delta(DELTA, base="s1")
    wal.append_delta(DELTA, base="s1")
    wal.append_checkpoint("s2", 2)
    wal.append_delta(DELTA, base="s2")
    return wal


class TestHistoryHelpers:
    def test_folded_lsn_frontier(self, tmp_path):
        records = history(tmp_path).records()
        assert folded_lsn(records) == 2
        assert folded_lsn(records, "s2") == 2

    def test_older_snapshot_replays_full_history(self, tmp_path):
        records = history(tmp_path).records()
        assert folded_lsn(records, "s1") == 0
        assert [r["lsn"] for r in pending_deltas(records, "s1")] \
            == [1, 2, 4]

    def test_foreign_snapshot_refused(self, tmp_path):
        records = history(tmp_path).records()
        with pytest.raises(WalError, match="does not describe"):
            folded_lsn(records, "someone-elses-snapshot")

    def test_empty_log_accepts_any_snapshot(self):
        assert folded_lsn([], "anything") == 0
        assert pending_deltas([], "anything") == []

    def test_base_snapshot_tracks_checkpoints(self, tmp_path):
        wal = history(tmp_path)
        assert base_snapshot(wal.records()) == "s2"
        assert protected_snapshots(wal) == {"s2"}

    def test_protected_includes_pending_bases(self, tmp_path):
        wal = wal_at(tmp_path, fsync="off")
        wal.append_delta(DELTA, base="s1")
        assert protected_snapshots(wal) == {"s1"}
        assert protected_snapshots(str(wal.path)) == {"s1"}

    def test_read_wal_missing_file_is_empty(self, tmp_path):
        assert read_wal(tmp_path / "nope.wal") == []

    def test_read_wal_tolerates_torn_tail_without_repair(self,
                                                         tmp_path):
        wal = wal_at(tmp_path)
        wal.append_delta(DELTA, base="s1")
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(struct.pack("<I", 5))
        damaged = wal.path.stat().st_size
        assert len(read_wal(wal.path)) == 1
        assert wal.path.stat().st_size == damaged  # untouched


# ----------------------------------------------------------------------
# engine replay
# ----------------------------------------------------------------------
class TestReplay:
    def test_replay_needs_snapshot_anchor(self, fig4, tmp_path):
        engine = QueryEngine(fig4)
        engine.build_index(radius=FIG4_RMAX)
        with pytest.raises(WalError, match="snapshot_id"):
            replay(engine, [])

    def test_replay_matches_live_application(self, tmp_path):
        from repro.snapshot import SnapshotStore
        dbg = figure4_graph()
        index = CommunityIndex.build(dbg, FIG4_RMAX)
        snap = SnapshotStore(tmp_path / "store").publish(
            dbg, index, provenance={})
        wal = wal_at(tmp_path, fsync="off")
        delta = GraphDelta(new_edges=[(0, 3, 0.25)])
        lsn = wal.append_delta(delta, base=snap.id)

        live = QueryEngine.from_snapshot(snap.path)
        live.apply_delta(delta, lsn=lsn)
        replayed = QueryEngine.from_snapshot(snap.path,
                                             wal_path=wal)
        assert replayed.deltas_applied == 1
        assert replayed.applied_lsn == lsn
        assert wal.replayed == 1
        assert (replayed.dbg.n, replayed.dbg.m) \
            == (live.dbg.n, live.dbg.m)
        from repro.engine.spec import QuerySpec
        spec = QuerySpec(keywords=("a", "b", "c"), rmax=FIG4_RMAX)
        assert [c.nodes for c in replayed.run_all(spec)] \
            == [c.nodes for c in live.run_all(spec)]

    def test_replay_is_idempotent_per_lsn(self, tmp_path):
        from repro.snapshot import SnapshotStore
        dbg = figure4_graph()
        index = CommunityIndex.build(dbg, FIG4_RMAX)
        snap = SnapshotStore(tmp_path / "store").publish(
            dbg, index, provenance={})
        wal = wal_at(tmp_path, fsync="off")
        wal.append_delta(GraphDelta(new_edges=[(0, 3, 0.25)]),
                         base=snap.id)
        engine = QueryEngine.from_snapshot(snap.path, wal_path=wal)
        n_after = engine.dbg.m
        # a broadcast re-delivering LSN 1 is a no-op
        engine.apply_delta(GraphDelta(new_edges=[(0, 3, 0.25)]),
                           lsn=1)
        assert engine.dbg.m == n_after
        assert engine.deltas_applied == 1


# ----------------------------------------------------------------------
# boundary validation (satellite: typed 400s)
# ----------------------------------------------------------------------
class TestParseDelta:
    BASE = 13  # fig4 node count

    def good(self):
        return {"nodes": [{"keywords": ["q"], "label": "new"}],
                "edges": [[0, self.BASE, 1.0]]}

    def test_accepts_valid_delta(self):
        delta = parse_delta(self.good(), base_nodes=self.BASE)
        assert delta.node_count() == 1
        assert delta.new_edges == [(0, self.BASE, 1.0)]

    def test_accepts_explicit_dense_ids(self):
        payload = {"nodes": [{"keywords": ["q"], "id": self.BASE}]}
        assert parse_delta(payload,
                           base_nodes=self.BASE).node_count() == 1

    @pytest.mark.parametrize("payload, message", [
        ({}, "at least one"),
        ({"nodes": "x"}, "'nodes' must be a list"),
        ({"edges": {}}, "'edges' must be a list"),
        ({"nodes": [42]}, "must be an object"),
        ({"nodes": [{"keywords": "q"}]}, "non-empty strings"),
        ({"nodes": [{"keywords": [""]}]}, "non-empty strings"),
        ({"nodes": [{"keywords": ["q"], "label": 7}]}, "label"),
        ({"nodes": [{"keywords": ["q"], "provenance": ["t"]}]},
         "provenance"),
        ({"nodes": [{"keywords": ["q"], "id": "a"}]}, "integer"),
        ({"nodes": [{"id": 13}, {"id": 13}]}, "duplicate"),
        ({"nodes": [{"id": 20}]}, "densely"),
        ({"edges": [[0, 1]]}, "triple"),
        ({"edges": [[0.5, 1, 1.0]]}, "integer node id"),
        ({"edges": [[True, 1, 1.0]]}, "integer node id"),
        ({"edges": [[-1, 1, 1.0]]}, "negative"),
        ({"edges": [[0, 99, 1.0]]}, "unknown node"),
        ({"edges": [[0, 1, "w"]]}, "number"),
        ({"edges": [[0, 1, float("nan")]]}, "finite"),
        ({"edges": [[0, 1, float("inf")]]}, "finite"),
        ({"edges": [[0, 1, -2.0]]}, ">= 0"),
    ])
    def test_rejections(self, payload, message):
        with pytest.raises(DeltaValidationError, match=message):
            parse_delta(payload, base_nodes=self.BASE)

    def test_unknown_base_skips_range_checks(self):
        # without base_nodes the endpoint range cannot be validated
        parse_delta({"edges": [[0, 99, 1.0]]})
