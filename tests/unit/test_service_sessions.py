"""Unit tests for session leases (:mod:`repro.service.sessions`)."""

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine
from repro.exceptions import QueryError
from repro.service.errors import NotFound, Overloaded, SessionGone
from repro.service.sessions import SessionManager
from repro.text.maintenance import GraphDelta

FIG4_TOTAL = 5


class FakeClock:
    """A controllable monotonic clock for TTL tests (no sleeping)."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move time forward."""
        self.now += seconds


@pytest.fixture()
def engine(fig4):
    e = QueryEngine(fig4)
    e.build_index(radius=FIG4_RMAX)
    return e


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def manager(engine, clock):
    return SessionManager(engine, ttl_seconds=60.0, max_sessions=4,
                          clock=clock)


class TestLeaseLifecycle:
    def test_create_then_next_streams_in_rank_order(self, manager):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        first, _ = manager.next(lease.id, 2)
        rest, _ = manager.next(lease.id, 10)
        costs = [c.cost for c in first + rest]
        assert len(first) == 2
        assert len(rest) == FIG4_TOTAL - 2
        assert costs == sorted(costs)

    def test_enlargement_charges_no_project_time(self, manager):
        """The acceptance property, at the manager level: k=10 -> 50
        adds enumerate/translate work but zero project work."""
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        manager.next(lease.id, 2)
        project_after_first = lease.context.seconds("project")
        runs_after_first = lease.context.counter("projection_runs")
        manager.next(lease.id, 3)             # enlarge
        assert lease.context.seconds("project") == project_after_first
        assert lease.context.counter("projection_runs") \
            == runs_after_first
        assert lease.context.counter("communities") == FIG4_TOTAL

    def test_unknown_id_is_not_found(self, manager):
        with pytest.raises(NotFound):
            manager.next("deadbeef", 1)

    def test_close_releases_lease(self, manager):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        manager.close(lease.id)
        assert manager.count == 0
        with pytest.raises(NotFound):
            manager.next(lease.id, 1)
        manager.close(lease.id)               # idempotent

    def test_negative_k_rejected(self, manager):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        with pytest.raises(QueryError):
            manager.next(lease.id, -1)

    def test_session_cap_sheds(self, manager):
        for _ in range(4):
            manager.create(list(FIG4_QUERY), FIG4_RMAX)
        with pytest.raises(Overloaded):
            manager.create(list(FIG4_QUERY), FIG4_RMAX)

    def test_sessions_share_projection_via_cache(self, manager,
                                                 engine):
        """The second same-spec session attaches to the first one's
        result-cache entry: no projection work, no enumeration — it
        rides the shared ranked prefix."""
        a = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        b = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        assert a.context.counter("projection_runs") == 1
        assert b.context.counter("projection_runs") == 0
        assert b.context.counter("result_cache_hits") == 1
        assert engine.results.stats.hits >= 1
        first = a.stream.take(2)
        second = b.stream.take(2)
        assert [(c.core, c.cost) for c in first] \
            == [(c.core, c.cost) for c in second]


class TestPrefixReuse:
    def test_session_after_warm_query_enumerates_nothing(
            self, manager, engine):
        """The satellite regression: a session opened after a warm
        ``/query`` serves the cached prefix from ``next`` with zero
        enumerate-stage time until the prefix is exhausted."""
        from repro.engine import QuerySpec

        warm = engine.top_k(QuerySpec(tuple(FIG4_QUERY), FIG4_RMAX,
                                      mode="topk", k=3))
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        assert lease.context.counter("result_cache_hits") == 1
        communities, _ = manager.next(lease.id, 3)
        assert [(c.core, c.cost) for c in communities] \
            == [(c.core, c.cost) for c in warm]
        assert lease.context.seconds("enumerate") == 0.0
        assert lease.context.seconds("project") == 0.0
        assert lease.context.counter("projection_runs") == 0
        # Walking past the cached frontier now pays (only) the tail.
        rest, _ = manager.next(lease.id, 10)
        assert len(rest) == FIG4_TOTAL - 3
        assert lease.context.counter("result_cache_extensions") == 1
        costs = [c.cost for c in communities + rest]
        assert costs == sorted(costs)


class TestTTL:
    def test_expired_lease_is_gone(self, manager, clock):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        clock.advance(61.0)
        with pytest.raises(SessionGone, match="expired"):
            manager.next(lease.id, 1)
        assert manager.count == 0
        assert manager.stats.expired == 1

    def test_next_slides_the_lease(self, manager, clock):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        clock.advance(50.0)
        manager.next(lease.id, 1)             # touch at t+50
        clock.advance(50.0)                   # t+100 < touch+60
        communities, _ = manager.next(lease.id, 1)
        assert len(communities) == 1

    def test_sweep_collects_expired(self, manager, clock):
        manager.create(list(FIG4_QUERY), FIG4_RMAX)
        manager.create(list(FIG4_QUERY), FIG4_RMAX,
                       ttl_seconds=600.0)     # outlives the sweep
        clock.advance(61.0)
        assert manager.sweep() == 1
        assert manager.count == 1

    def test_expired_lease_frees_cap_slot(self, manager, clock):
        for _ in range(4):
            manager.create(list(FIG4_QUERY), FIG4_RMAX)
        clock.advance(61.0)
        # create() sweeps first, so the table has room again.
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        assert manager.count == 1
        assert lease is not None


class TestGenerationChecks:
    def test_apply_delta_makes_lease_stale(self, manager, engine,
                                           fig4):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        manager.next(lease.id, 1)
        delta = GraphDelta(new_nodes=[({"a"}, "extra", None)],
                           new_edges=[(fig4.n, 0, 1.0),
                                      (0, fig4.n, 1.0)])
        engine.apply_delta(delta)
        with pytest.raises(SessionGone, match="stale"):
            manager.next(lease.id, 1)
        assert manager.stats.stale_dropped == 1
        assert manager.count == 0

    def test_index_swap_makes_lease_stale(self, manager, engine):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        engine.index = engine.index           # any swap bumps
        with pytest.raises(SessionGone):
            manager.next(lease.id, 1)

    def test_fresh_session_after_delta_serves_new_graph(
            self, manager, engine, fig4):
        old = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        delta = GraphDelta(new_nodes=[({"a"}, "extra", None)],
                           new_edges=[(fig4.n, 0, 1.0),
                                      (0, fig4.n, 1.0)])
        engine.apply_delta(delta)
        with pytest.raises(SessionGone):
            manager.next(old.id, 1)
        fresh = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        communities, _ = manager.next(fresh.id, 100)
        # The new "extra" node carries keyword a, so the enlarged
        # graph has strictly more communities than fig4's 5.
        assert len(communities) > FIG4_TOTAL

    def test_validation_errors(self, engine):
        with pytest.raises(QueryError):
            SessionManager(engine, ttl_seconds=0.0)
        with pytest.raises(QueryError):
            SessionManager(engine, max_sessions=0)

    def test_stats_as_dict_covers_all_counters(self, manager):
        lease = manager.create(list(FIG4_QUERY), FIG4_RMAX)
        manager.close(lease.id)
        flat = manager.stats.as_dict()
        assert flat["sessions_created"] == 1.0
        assert flat["sessions_closed"] == 1.0
        assert set(flat) == {"sessions_created", "sessions_closed",
                             "sessions_expired",
                             "sessions_stale_dropped"}
