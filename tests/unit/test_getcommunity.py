"""Unit tests for GetCommunity() (Algorithm 4)."""

import pytest

from repro.core.getcommunity import find_centers, get_community
from repro.datasets.paper_example import figure4_graph, node_id
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="module")
def fig4_graph():
    return figure4_graph().graph


class TestFindCenters:
    def test_r5_centers_and_costs(self, fig4_graph):
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        centers = find_centers(fig4_graph, core, 8.0)
        assert set(centers) == {node_id("v11"), node_id("v12")}
        assert centers[node_id("v11")] == 11.0
        assert centers[node_id("v12")] == 14.0

    def test_duplicate_positions_count_twice(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 3.0)
        centers = find_centers(g.compile(), (1, 1), 5.0)
        assert centers[0] == 6.0  # 3 + 3, one per position
        assert centers[1] == 0.0

    def test_no_centers_when_unreachable(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        assert find_centers(g.compile(), (1, 2), 5.0) == {}


class TestGetCommunity:
    def test_r5_community_structure(self, fig4_graph):
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        community = get_community(fig4_graph, core, 8.0)
        assert community.cost == 11.0
        assert community.centers == (node_id("v11"), node_id("v12"))
        assert community.pnodes == (node_id("v10"),)
        assert set(community.nodes) == {
            node_id(x) for x in ("v8", "v10", "v11", "v12", "v13")}

    def test_edges_are_induced_subgraph(self, fig4_graph):
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        community = get_community(fig4_graph, core, 8.0)
        expected = fig4_graph.induced_edges(list(community.nodes))
        assert list(community.edges) == expected

    def test_empty_core_rejected(self, fig4_graph):
        with pytest.raises(QueryError):
            get_community(fig4_graph, (), 8.0)

    def test_negative_rmax_rejected(self, fig4_graph):
        with pytest.raises(QueryError):
            get_community(fig4_graph, (0,), -1.0)

    def test_core_without_center_rejected(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(QueryError):
            get_community(g.compile(), (1, 2), 5.0)

    def test_single_node_community(self):
        g = DiGraph(1)
        community = get_community(g.compile(), (0,), 5.0)
        assert community.nodes == (0,)
        assert community.centers == (0,)
        assert community.cost == 0.0
        assert community.pnodes == ()

    def test_every_center_reaches_every_knode(self, fig4_graph):
        from repro.graph.dijkstra import single_source_distances
        core = tuple(node_id(x) for x in ("v4", "v8", "v6"))
        community = get_community(fig4_graph, core, 8.0)
        for center in community.centers:
            dist = single_source_distances(fig4_graph, center, 8.0)
            for knode in community.knodes:
                assert dist.get(knode) <= 8.0

    def test_pnode_on_qualifying_path(self, fig4_graph):
        # v10 is a pnode of R5: it lies on v11 -> v10 -> v8 (5 <= 8)
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        community = get_community(fig4_graph, core, 8.0)
        v10 = node_id("v10")
        assert v10 in community.pnodes
        assert v10 not in community.knodes
        assert v10 not in community.centers
