"""Property-based invariants of Definition 2.1 on every produced
community: center reachability, cost optimality, pnode membership,
induced edges."""

from hypothesis import given, settings, strategies as st

from repro.core.comm_all import all_communities
from repro.graph.dijkstra import single_source_distances
from repro.graph.generators import random_database_graph

KEYWORDS = ["a", "b"]


@st.composite
def community_cases(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.12, 0.25, 0.4]))
    l = draw(st.integers(min_value=1, max_value=2))
    rmax = float(draw(st.sampled_from([2, 4, 7])))
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=draw(st.booleans()))
    return dbg, KEYWORDS[:l], rmax


@settings(max_examples=50, deadline=None)
@given(community_cases())
def test_definition_2_1_invariants(case):
    dbg, keywords, rmax = case
    graph = dbg.graph
    for community in all_communities(dbg, keywords, rmax):
        knodes = set(community.core)
        centers = set(community.centers)
        nodes = set(community.nodes)

        # knodes carry their keywords, in position order
        for position, node in enumerate(community.core):
            assert keywords[position] in dbg.keywords_of(node)

        # every center reaches every knode within Rmax; the cost is
        # the minimum per-center total
        totals = []
        for center in centers:
            dist = single_source_distances(graph, center, rmax)
            total = 0.0
            for node in community.core:
                assert dist.get(node) <= rmax
                total += dist[node]
            totals.append(total)
        assert abs(min(totals) - community.cost) < 1e-9

        # no node outside the center set qualifies as a center
        for candidate in range(graph.n):
            if candidate in centers:
                continue
            dist = single_source_distances(graph, candidate, rmax)
            assert any(dist.get(node, float("inf")) > rmax
                       for node in knodes)

        # nodes = centers ∪ knodes ∪ pnodes, disjoint decomposition
        pnodes = set(community.pnodes)
        assert nodes == centers | knodes | pnodes
        assert not pnodes & (centers | knodes)

        # every node lies on a center->knode path of weight <= Rmax
        from repro.graph.dijkstra import bounded_dijkstra
        dist_s = bounded_dijkstra(graph.forward, centers, rmax)
        dist_t = bounded_dijkstra(graph.reverse, knodes, rmax)
        for node in nodes:
            assert dist_s.get(node) + dist_t.get(node) <= rmax

        # and no excluded node does
        for node in range(graph.n):
            if node not in nodes:
                assert (node not in dist_s or node not in dist_t
                        or dist_s[node] + dist_t[node] > rmax)

        # edges are exactly the induced subgraph of G_D
        assert list(community.edges) \
            == graph.induced_edges(sorted(nodes))


@settings(max_examples=40, deadline=None)
@given(community_cases())
def test_costs_bounded_by_l_times_rmax(case):
    dbg, keywords, rmax = case
    for community in all_communities(dbg, keywords, rmax):
        assert 0.0 <= community.cost <= len(keywords) * rmax
