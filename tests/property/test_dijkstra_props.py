"""Property-based tests for bounded Dijkstra against a reference."""

import math

from hypothesis import given, settings, strategies as st

from repro.graph.csr import CompiledGraph
from repro.graph.dijkstra import bounded_dijkstra


@st.composite
def graphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edge_count = draw(st.integers(min_value=0, max_value=3 * n))
    edges = []
    for _ in range(edge_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        w = draw(st.integers(min_value=0, max_value=8))
        edges.append((u, v, float(w)))
    return CompiledGraph.from_edges(n, edges)


def bellman_ford(graph: CompiledGraph, sources):
    """Reference shortest paths: |V| rounds of full relaxation."""
    dist = {s: 0.0 for s in sources}
    edges = list(graph.edges())
    for _ in range(graph.n):
        changed = False
        for u, v, w in edges:
            if u in dist and dist[u] + w < dist.get(v, math.inf):
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    return dist


@settings(max_examples=120, deadline=None)
@given(graphs(), st.integers(min_value=0, max_value=20))
def test_bounded_dijkstra_matches_bellman_ford(graph, radius_int):
    radius = float(radius_int)
    sources = list(range(min(2, graph.n)))
    got = bounded_dijkstra(graph.forward, sources, radius)
    ref = {u: d for u, d in bellman_ford(graph, sources).items()
           if d <= radius}
    assert dict(got.items()) == ref


@settings(max_examples=80, deadline=None)
@given(graphs())
def test_reverse_search_is_forward_on_transpose(graph):
    fwd_from_0 = bounded_dijkstra(graph.forward, [0])
    # distance u->0 via reverse == distance 0->u on the transpose
    transpose = CompiledGraph.from_edges(
        graph.n, [(v, u, w) for u, v, w in graph.edges()])
    rev = bounded_dijkstra(graph.reverse, [0])
    fwd_t = bounded_dijkstra(transpose.forward, [0])
    assert dict(rev.items()) == dict(fwd_t.items())
    del fwd_from_0


@settings(max_examples=80, deadline=None)
@given(graphs(), st.integers(min_value=0, max_value=10))
def test_source_attribution_is_a_valid_nearest_source(graph, radius_int):
    radius = float(radius_int)
    sources = list(range(min(3, graph.n)))
    dmap = bounded_dijkstra(graph.forward, sources, radius)
    # per-source distances
    per_source = {
        s: bounded_dijkstra(graph.forward, [s], radius) for s in sources}
    for node in dmap:
        src = dmap.source(node)
        assert src in sources
        # the attributed source achieves the multi-source distance
        assert per_source[src][node] == dmap[node]
        # and no other source is strictly closer
        for s in sources:
            assert per_source[s].get(node, math.inf) >= dmap[node]


@settings(max_examples=60, deadline=None)
@given(graphs(), st.integers(min_value=0, max_value=8))
def test_radius_monotonicity(graph, radius_int):
    small = bounded_dijkstra(graph.forward, [0], float(radius_int))
    large = bounded_dijkstra(graph.forward, [0], float(radius_int) + 2)
    for node, dist in small.items():
        assert large[node] == dist
    assert len(large) >= len(small)
