"""Property tests for tree answers (exhaustive and BANKS)."""

from hypothesis import given, settings, strategies as st

from repro.core.banks import backward_search
from repro.core.getcommunity import find_centers
from repro.core.trees import enumerate_trees
from repro.graph.generators import random_database_graph

KEYWORDS = ["a", "b"]


@st.composite
def tree_cases(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.1, 0.25]))
    l = draw(st.integers(min_value=1, max_value=2))
    bound = float(draw(st.sampled_from([2, 4, 6])))
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=draw(st.booleans()))
    return dbg, KEYWORDS[:l], bound


def check_tree_shape(answer):
    assert len(answer.edges) == len(answer.nodes) - 1
    targets = [v for _, v, _ in answer.edges]
    assert len(targets) == len(set(targets))
    assert answer.root not in targets
    assert answer.weight == sum(w for _, _, w in answer.edges) \
        or answer.weight >= 0  # BANKS scores are path sums


@settings(max_examples=40, deadline=None)
@given(tree_cases())
def test_enumerated_trees_are_valid(case):
    dbg, keywords, bound = case
    for answer in enumerate_trees(dbg, keywords, bound,
                                  max_paths=20_000):
        check_tree_shape(answer)
        assert answer.weight <= bound
        # exhaustive enumeration weights are exact edge sums
        assert answer.weight == sum(w for _, _, w in answer.edges)
        # the core carries the right keywords, in order
        for position, node in enumerate(answer.core):
            assert keywords[position] in dbg.keywords_of(node)


@settings(max_examples=40, deadline=None)
@given(tree_cases())
def test_enumerated_trees_distinct(case):
    dbg, keywords, bound = case
    seen = set()
    for answer in enumerate_trees(dbg, keywords, bound,
                                  max_paths=20_000):
        key = frozenset(answer.edges)
        assert key not in seen
        seen.add(key)


@settings(max_examples=40, deadline=None)
@given(tree_cases())
def test_banks_roots_are_centers(case):
    dbg, keywords, bound = case
    for answer in backward_search(dbg, keywords, max_score=bound):
        check_tree_shape(answer)
        # the BANKS score is the sum of per-keyword shortest distances
        # from the root, i.e. the community cost at that center
        centers = find_centers(dbg.graph, answer.core,
                               bound * len(keywords))
        assert answer.root in centers


@settings(max_examples=30, deadline=None)
@given(tree_cases())
def test_banks_best_score_matches_best_community(case):
    dbg, keywords, bound = case
    from repro.core.naive import naive_all
    answers = list(backward_search(dbg, keywords, max_score=bound))
    communities = naive_all(dbg, keywords, rmax=bound)
    if not communities:
        return
    if answers:
        best_tree = min(a.weight for a in answers)
        # every BANKS root is a community center, so the best tree
        # score cannot beat the best community cost
        assert best_tree >= communities[0].cost - 1e-9