"""Property tests for the node-weight reduction."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph
from repro.graph.dijkstra import bounded_dijkstra
from repro.graph.node_weights import node_weighted_view


@st.composite
def weighted_cases(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    edges = []
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        edges.append((rng.randrange(n), rng.randrange(n),
                      float(rng.randint(0, 5))))
    node_weights = [float(rng.randint(0, 4)) for _ in range(n)]
    dbg = DatabaseGraph(CompiledGraph.from_edges(n, edges),
                        [set() for _ in range(n)])
    return dbg, node_weights


def path_free_distances(graph: CompiledGraph, source: int,
                        node_weights):
    """Reference: Bellman-Ford with node weights charged on arrival."""
    dist = {source: 0.0}
    edges = list(graph.edges())
    for _ in range(graph.n):
        for u, v, w in edges:
            if u in dist:
                candidate = dist[u] + w + node_weights[v]
                if candidate < dist.get(v, math.inf):
                    dist[v] = candidate
    return dist


@settings(max_examples=80, deadline=None)
@given(weighted_cases())
def test_view_distances_match_arrival_charging(case):
    dbg, node_weights = case
    view = node_weighted_view(dbg, node_weights)
    got = bounded_dijkstra(view.graph.forward, [0])
    ref = path_free_distances(dbg.graph, 0, node_weights)
    assert dict(got.items()) == ref


@settings(max_examples=40, deadline=None)
@given(weighted_cases())
def test_zero_weights_identity(case):
    dbg, _ = case
    view = node_weighted_view(dbg, [0.0] * dbg.n)
    assert sorted(view.graph.edges()) == sorted(dbg.graph.edges())


@settings(max_examples=40, deadline=None)
@given(weighted_cases())
def test_weights_only_increase_distances(case):
    dbg, node_weights = case
    view = node_weighted_view(dbg, node_weights)
    plain = bounded_dijkstra(dbg.graph.forward, [0])
    weighted = bounded_dijkstra(view.graph.forward, [0])
    assert set(weighted) == set(plain)  # reachability unchanged
    for node, dist in plain.items():
        assert weighted[node] >= dist
