"""Property tests for result-cache correctness.

The generation-keyed result cache must be invisible except for speed:

1. on random graphs and specs, cold, warm (exact repeat), sliced
   (k' < k) and frontier-extended (k' > k) answers are byte-for-byte
   identical — cores, costs, ranks, node sets, edge sets;
2. across a generation swap (a :class:`~repro.text.maintenance.
   GraphDelta`), the cache never serves the old graph's communities:
   post-delta answers match a from-scratch engine on the grown graph.

Mirrors ``test_projection_cache_props.py``: random graphs plus
append-only deltas, equality is full structural equality.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import QueryContext, QueryEngine, QuerySpec
from repro.graph.generators import random_database_graph
from repro.text.maintenance import GraphDelta

KEYWORDS = ["a", "b"]


def _fingerprint(communities):
    return [(c.core, c.cost, c.centers, c.nodes, c.edges)
            for c in communities]


def _spec(k, radius, aggregate="sum"):
    return QuerySpec(tuple(KEYWORDS), radius, mode="topk", k=k,
                     aggregate=aggregate)


@st.composite
def cache_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=3, max_value=10))
    p = draw(st.sampled_from([0.15, 0.3]))
    radius = float(draw(st.sampled_from([3, 5, 8])))
    aggregate = draw(st.sampled_from(["sum", "max"]))
    k = draw(st.integers(min_value=1, max_value=6))
    dbg = random_database_graph(n, p, KEYWORDS, seed=seed,
                                bidirected=draw(st.booleans()))

    extra = draw(st.integers(min_value=1, max_value=3))
    new_nodes = []
    for i in range(extra):
        kws = {kw for kw in KEYWORDS if rng.random() < 0.4}
        new_nodes.append((kws, f"new{i}", None))
    new_edges = []
    total = n + extra
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        u, v = rng.randrange(total), rng.randrange(total)
        if u != v and (u >= n or v >= n):
            new_edges.append((u, v, float(rng.randint(1, 3))))
    return dbg, radius, k, aggregate, GraphDelta(new_nodes, new_edges)


@settings(max_examples=40, deadline=None)
@given(cache_cases())
def test_cached_answers_equal_uncached_across_k(case):
    """Cold == warm == sliced == extended, byte for byte."""
    dbg, radius, k, aggregate, _ = case
    if any(not dbg.nodes_with_keyword(kw) for kw in KEYWORDS):
        return
    cached = QueryEngine(dbg)
    cached.build_index(radius=radius)
    cold = QueryEngine(dbg, result_cache_bytes=0)
    cold.build_index(radius=radius)

    ctx = QueryContext()
    first = cached.top_k(_spec(k, radius, aggregate), ctx)
    assert _fingerprint(first) \
        == _fingerprint(cold.top_k(_spec(k, radius, aggregate)))

    # k' = k: pure lookup, same bytes.
    repeat = cached.top_k(_spec(k, radius, aggregate), ctx)
    assert _fingerprint(repeat) == _fingerprint(first)
    assert ctx.counter("result_cache_hits") >= 1

    # k' < k: a slice of the same prefix.
    smaller = max(1, k - 1)
    assert _fingerprint(
        cached.top_k(_spec(smaller, radius, aggregate))) \
        == _fingerprint(
            cold.top_k(_spec(smaller, radius, aggregate)))

    # k' > k: frontier resume must equal a cold run at the larger k.
    larger = k + 2
    assert _fingerprint(
        cached.top_k(_spec(larger, radius, aggregate))) \
        == _fingerprint(
            cold.top_k(_spec(larger, radius, aggregate)))

    # COMM-all rides its own entry and agrees too.
    spec_all = QuerySpec(tuple(KEYWORDS), radius, mode="all",
                         aggregate=aggregate)
    assert _fingerprint(cached.run_all(spec_all)) \
        == _fingerprint(cached.run_all(spec_all)) \
        == _fingerprint(cold.run_all(spec_all))


@settings(max_examples=40, deadline=None)
@given(cache_cases())
def test_generation_swap_never_serves_the_old_graph(case):
    """After a delta, every answer matches a from-scratch engine on
    the grown graph — the old generation's entries are unreachable."""
    dbg, radius, k, aggregate, delta = case
    if any(not dbg.nodes_with_keyword(kw) for kw in KEYWORDS):
        return
    engine = QueryEngine(dbg)
    engine.build_index(radius=radius)
    engine.top_k(_spec(k, radius, aggregate))     # warm the old graph
    engine.apply_delta(delta)
    assert len(engine.results) == 0

    fresh = QueryEngine(engine.dbg, result_cache_bytes=0)
    fresh.build_index(radius=radius)
    expected = fresh.top_k(_spec(k, radius, aggregate))
    ctx = QueryContext()
    after = engine.top_k(_spec(k, radius, aggregate), ctx)
    assert ctx.counter("result_cache_hits") == 0
    assert _fingerprint(after) == _fingerprint(expected)
    # And the re-warmed entry serves the new graph's bytes.
    assert _fingerprint(engine.top_k(_spec(k, radius, aggregate))) \
        == _fingerprint(expected)
