"""Property-based projection equivalence (Algorithm 6 / Section VI).

The paper's claim: for any query with Rmax <= R, answering on the
projected graph gives exactly the result of answering on G_D. We check
it end to end through the facade, node sets and edge sets included.
"""

from hypothesis import given, settings, strategies as st

from repro.core.community import community_sort_key
from repro.core.naive import naive_all
from repro.core.search import CommunitySearch
from repro.graph.generators import random_database_graph

KEYWORDS = ["a", "b", "c"]


@st.composite
def projection_cases(draw):
    n = draw(st.integers(min_value=3, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.1, 0.2, 0.35]))
    l = draw(st.integers(min_value=1, max_value=3))
    rmax = float(draw(st.sampled_from([2, 4, 6])))
    slack = float(draw(st.sampled_from([0, 1, 3])))
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=draw(st.booleans()))
    return dbg, KEYWORDS[:l], rmax, rmax + slack


@settings(max_examples=50, deadline=None)
@given(projection_cases())
def test_projected_query_equals_full_query(case):
    dbg, keywords, rmax, index_radius = case
    search = CommunitySearch(dbg)
    search.build_index(radius=index_radius)
    ref = naive_all(dbg, keywords, rmax)
    got = sorted(search.all_communities(keywords, rmax,
                                        use_projection=True),
                 key=community_sort_key)
    assert [(c.core, c.cost, c.nodes, c.centers, c.pnodes, c.edges)
            for c in got] \
        == [(c.core, c.cost, c.nodes, c.centers, c.pnodes, c.edges)
            for c in ref]


@settings(max_examples=40, deadline=None)
@given(projection_cases())
def test_projection_contains_all_result_nodes(case):
    dbg, keywords, rmax, index_radius = case
    search = CommunitySearch(dbg)
    search.build_index(radius=index_radius)
    needed = set()
    for community in naive_all(dbg, keywords, rmax):
        needed.update(community.nodes)
    if not needed:
        return
    if any(not search.index.nodes(kw) for kw in keywords):
        return
    projection = search.project(keywords, rmax)
    assert needed <= set(projection.mapping)


@settings(max_examples=40, deadline=None)
@given(projection_cases())
def test_projected_topk_stream_matches_naive(case):
    dbg, keywords, rmax, index_radius = case
    search = CommunitySearch(dbg)
    search.build_index(radius=index_radius)
    ref = naive_all(dbg, keywords, rmax)
    stream = search.top_k_stream(keywords, rmax)
    got = stream.take(len(ref) + 2)
    assert [c.cost for c in got] == [c.cost for c in ref]
