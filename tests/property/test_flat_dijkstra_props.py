"""Flat-array kernel == dict-based reference, including tie-breaks.

The production path (:func:`~repro.graph.dijkstra.bounded_dijkstra`)
runs :func:`~repro.graph.dijkstra.flat_bounded_dijkstra` behind a
duplicate-search memo; :func:`~repro.graph.dijkstra.
heap_bounded_dijkstra` is the reference oracle. These properties hold
the whole stack to exact agreement — settled sets, distances **and**
nearest-seed assignment, where equal-distance ties must resolve the
same way (both kernels push identical ``(distance, node, origin)``
heap entries, so ties break toward the smaller node id, then the
smaller origin) — plus the memo's isolation guarantees (fresh dicts
per call, bounded size, oversized-result bypass).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.graph.csr import CompiledGraph
from repro.graph.dijkstra import (
    MEMO_CAPACITY,
    MEMO_MAX_NODES,
    SearchMemo,
    bounded_dijkstra,
    flat_bounded_dijkstra,
    heap_bounded_dijkstra,
)


@st.composite
def weighted_graphs(draw, max_nodes=14):
    """Random digraphs with small integer weights (ties are common)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edge_count = draw(st.integers(min_value=0, max_value=4 * n))
    edges = []
    for _ in range(edge_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        w = draw(st.integers(min_value=0, max_value=5))
        edges.append((u, v, float(w)))
    return CompiledGraph.from_edges(n, edges)


@st.composite
def seed_sets(draw, graph):
    """1-4 seeds, mixing bare node ids and (node, offset) pairs."""
    count = draw(st.integers(min_value=1, max_value=4))
    seeds = []
    for _ in range(count):
        node = draw(st.integers(min_value=0, max_value=graph.n - 1))
        if draw(st.booleans()):
            offset = draw(st.integers(min_value=0, max_value=3))
            seeds.append((node, float(offset)))
        else:
            seeds.append(node)
    return seeds


@st.composite
def search_cases(draw):
    """(graph, seeds, radius) triples over both CSR directions."""
    graph = draw(weighted_graphs())
    seeds = draw(seed_sets(graph))
    radius = draw(st.one_of(
        st.just(math.inf),
        st.integers(min_value=0, max_value=15).map(float)))
    adjacency = graph.reverse if draw(st.booleans()) else graph.forward
    return adjacency, seeds, radius


def assert_equivalent(got, ref):
    """Same settled set, same distances, same nearest-seed per node."""
    assert dict(got.items()) == dict(ref.items())
    assert got.sources() == ref.sources()


@settings(max_examples=200, deadline=None)
@given(search_cases())
def test_flat_kernel_matches_heap_reference(case):
    adjacency, seeds, radius = case
    assert_equivalent(flat_bounded_dijkstra(adjacency, seeds, radius),
                      heap_bounded_dijkstra(adjacency, seeds, radius))


@settings(max_examples=100, deadline=None)
@given(search_cases())
def test_public_entry_matches_reference_with_memo_live(case):
    """bounded_dijkstra (flat + memo) stays exact across repeats."""
    adjacency, seeds, radius = case
    ref = heap_bounded_dijkstra(adjacency, seeds, radius)
    first = bounded_dijkstra(adjacency, seeds, radius)
    second = bounded_dijkstra(adjacency, seeds, radius)  # memo hit
    assert_equivalent(first, ref)
    assert_equivalent(second, ref)


@settings(max_examples=60, deadline=None)
@given(weighted_graphs(), st.integers(min_value=0, max_value=10))
def test_unit_weight_tie_breaks_agree(graph, radius_int):
    """Uniform weights maximize equal-distance ties; sources must
    still match node for node."""
    uniform = CompiledGraph.from_edges(
        graph.n, [(u, v, 1.0) for u, v, _ in graph.edges()])
    seeds = list(range(min(3, uniform.n)))
    radius = float(radius_int)
    assert_equivalent(
        flat_bounded_dijkstra(uniform.forward, seeds, radius),
        heap_bounded_dijkstra(uniform.forward, seeds, radius))


class TestSearchMemo:
    """Isolation and bounding of the duplicate-search memo."""

    def _line(self, n):
        return CompiledGraph.from_edges(
            n, [(i, i + 1, 1.0) for i in range(n - 1)])

    def test_hits_return_fresh_dicts(self):
        graph = self._line(6)
        first = bounded_dijkstra(graph.forward, [0], 10.0)
        second = bounded_dijkstra(graph.forward, [0], 10.0)
        assert dict(first.items()) == dict(second.items())
        # Mutating one caller's result must not leak into the next.
        assert second.distances() is not first.distances()
        assert second.sources() is not first.sources()
        first.distances()[0] = -1.0
        third = bounded_dijkstra(graph.forward, [0], 10.0)
        assert third[0] == 0.0

    def test_capacity_is_bounded(self):
        memo = SearchMemo(capacity=4)
        graph = self._line(3)
        result = flat_bounded_dijkstra(graph.forward, [0])
        for i in range(10):
            memo.store((i,), graph.forward, result)
        assert len(memo) == 4

    def test_oversized_results_bypass_the_memo(self):
        memo = SearchMemo()
        n = MEMO_MAX_NODES + 2
        graph = self._line(n)
        result = flat_bounded_dijkstra(graph.forward, [0])
        assert len(result) == n
        memo.store(("big",), graph.forward, result)
        assert len(memo) == 0
        assert memo.lookup(("big",)) is None

    def test_distinct_radii_are_distinct_entries(self):
        graph = self._line(5)
        near = bounded_dijkstra(graph.forward, [0], 1.0)
        far = bounded_dijkstra(graph.forward, [0], 3.0)
        assert len(near) == 2
        assert len(far) == 4

    def test_default_capacity_sane(self):
        assert SearchMemo().capacity == MEMO_CAPACITY
