"""Property-based equivalence of PDall / PDk with the naive enumerator.

This is the mechanical proof of the paper's completeness and (weak)
duplication-freeness claims on arbitrary small graphs, including the
tie-heavy integer-weight cases that stress deterministic ordering.
"""

from hypothesis import given, settings, strategies as st

from repro.core.comm_all import all_communities
from repro.core.comm_k import TopKStream
from repro.core.naive import naive_all
from repro.graph.generators import random_database_graph

KEYWORDS = ["a", "b", "c", "d"]


@st.composite
def query_cases(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.08, 0.15, 0.25, 0.4]))
    l = draw(st.integers(min_value=1, max_value=4))
    rmax = float(draw(st.sampled_from([0, 2, 4, 6, 9])))
    bidirected = draw(st.booleans())
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=bidirected)
    return dbg, KEYWORDS[:l], rmax


@settings(max_examples=60, deadline=None)
@given(query_cases())
def test_pdall_complete_and_duplication_free(case):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax)
    got = all_communities(dbg, keywords, rmax)
    # duplication-free: every core appears once
    cores = [c.core for c in got]
    assert len(cores) == len(set(cores))
    # complete with exact costs
    assert sorted((c.core, c.cost) for c in got) \
        == sorted((c.core, c.cost) for c in ref)


@settings(max_examples=60, deadline=None)
@given(query_cases())
def test_pdk_is_exact_ranked_enumeration(case):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax)
    stream = TopKStream(dbg, keywords, rmax)
    got = stream.take(len(ref) + 3)
    # same cost sequence (ranking), same core set, no duplicates
    assert [c.cost for c in got] == [c.cost for c in ref]
    assert sorted(c.core for c in got) == sorted(c.core for c in ref)
    assert stream.exhausted


@settings(max_examples=40, deadline=None)
@given(query_cases(), st.integers(min_value=1, max_value=4))
def test_pdk_interactive_equals_one_shot(case, split):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax)
    stream = TopKStream(dbg, keywords, rmax)
    combined = stream.take(split) + stream.more(len(ref))
    assert [c.cost for c in combined] == [c.cost for c in ref]


@settings(max_examples=40, deadline=None)
@given(query_cases())
def test_pdall_streams_match_materialized(case):
    dbg, keywords, rmax = case
    from repro.core.comm_all import enumerate_all
    streamed = [c.core for c in enumerate_all(dbg, keywords, rmax)]
    materialized = [c.core
                    for c in all_communities(dbg, keywords, rmax)]
    assert streamed == materialized
