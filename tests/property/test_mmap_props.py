"""Property tests for the mmap snapshot mode.

Two properties back the zero-copy refactor:

1. every array a mmap-mode load hands out is a read-only view —
   mutation raises instead of silently corrupting the shared pages;
2. a copy-mode engine and a mmap-mode engine over the same artifact
   answer PDall and PDk identically, community for community, on
   adversarial Hypothesis graphs — so ``--snapshot-mode`` can never
   change what a query returns, only how the bytes are materialized.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.snapshot import load_snapshot, write_snapshot

from test_snapshot_props import _same_graph, _same_index, artifacts


def _community_key(communities):
    return [(c.core, c.cost, c.centers, c.pnodes, c.nodes, c.edges)
            for c in communities]


@settings(max_examples=25, deadline=None)
@given(case=artifacts())
def test_mmap_load_round_trips_and_views_are_read_only(
        case, tmp_path_factory):
    dbg, index, _ = case
    path = tmp_path_factory.mktemp("mmap") / "s"
    write_snapshot(path, dbg, index)       # uncompressed: mappable
    loaded = load_snapshot(path, mode="mmap")
    assert loaded.mode == "mmap"
    _same_graph(loaded.dbg, dbg)
    if index is not None:
        _same_index(index, loaded.index)
    for arr in (loaded.dbg.graph.forward.indptr,
                loaded.dbg.graph.forward.targets,
                loaded.dbg.graph.forward.weights):
        arr = np.asarray(arr)
        assert not arr.flags.writeable
        if arr.size:
            with pytest.raises(ValueError):
                arr[0] = 1


@settings(max_examples=20, deadline=None)
@given(case=artifacts(), data=st.data())
def test_copy_and_mmap_engines_answer_identically(
        case, data, tmp_path_factory):
    dbg, index, _ = case
    path = tmp_path_factory.mktemp("modes") / "s"
    write_snapshot(path, dbg, index)
    copied = QueryEngine.from_snapshot(path, mode="copy")
    mapped = QueryEngine.from_snapshot(path, mode="mmap")
    assert copied.snapshot_mode == "copy"
    assert mapped.snapshot_mode == "mmap"

    vocab = sorted(dbg.vocabulary())
    if not vocab:
        return
    keywords = data.draw(st.lists(st.sampled_from(vocab),
                                  min_size=1, max_size=2,
                                  unique=True))
    rmax = data.draw(st.sampled_from([1.0, 4.0, 9.0]))
    if index is not None:
        # Projection refuses Rmax beyond the index radius R.
        rmax = min(rmax, index.radius)

    spec = QuerySpec(tuple(keywords), rmax, mode="all")
    all_a = _community_key(copied.run_all(spec))
    all_b = _community_key(mapped.run_all(spec))
    assert all_a == all_b
    # The same answers serialize to the same JSON — no numpy scalar
    # may leak out of the mmap path.
    assert json.dumps(all_b, default=str) \
        == json.dumps(all_a, default=str)

    stream_a = copied.top_k_stream(keywords, rmax).take(3)
    stream_b = mapped.top_k_stream(keywords, rmax).take(3)
    assert _community_key(stream_a) == _community_key(stream_b)
