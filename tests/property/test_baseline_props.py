"""Property-based equivalence of the BU/TD baselines with naive."""

from hypothesis import given, settings, strategies as st

from repro.core.baselines import bu_all, bu_top_k, td_all, td_top_k
from repro.core.naive import naive_all
from repro.graph.generators import random_database_graph

KEYWORDS = ["a", "b", "c"]


@st.composite
def query_cases(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.1, 0.2, 0.35]))
    l = draw(st.integers(min_value=1, max_value=3))
    rmax = float(draw(st.sampled_from([0, 2, 5, 8])))
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=draw(st.booleans()))
    return dbg, KEYWORDS[:l], rmax


@settings(max_examples=50, deadline=None)
@given(query_cases())
def test_bu_all_equals_naive(case):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax)
    got = bu_all(dbg, keywords, rmax)
    assert sorted((c.core, c.cost) for c in got) \
        == sorted((c.core, c.cost) for c in ref)


@settings(max_examples=50, deadline=None)
@given(query_cases())
def test_td_all_equals_naive(case):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax)
    got = td_all(dbg, keywords, rmax)
    assert sorted((c.core, c.cost) for c in got) \
        == sorted((c.core, c.cost) for c in ref)


@settings(max_examples=40, deadline=None)
@given(query_cases(), st.integers(min_value=1, max_value=8))
def test_pruned_top_k_is_exact(case, k):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax)
    want_costs = [c.cost for c in ref[:k]]
    for runner in (bu_top_k, td_top_k):
        got = runner(dbg, keywords, k, rmax)
        assert [c.cost for c in got] == want_costs
        cores = [c.core for c in got]
        assert len(cores) == len(set(cores))
