"""Property tests for incremental index maintenance.

The guarantees under test (see :mod:`repro.text.maintenance`):

1. the updated index's postings are *supersets* of a fresh rebuild's
   (sound, possibly over-complete);
2. queries answered through the updated index (via the Algorithm-6
   projection, which recomputes real distances) equal the naive ground
   truth on the grown graph — exactness survives growth.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.community import community_sort_key
from repro.core.naive import naive_all
from repro.core.search import CommunitySearch
from repro.graph.generators import random_database_graph
from repro.text.inverted_index import CommunityIndex
from repro.text.maintenance import GraphDelta, apply_delta

KEYWORDS = ["a", "b"]


@st.composite
def growth_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=3, max_value=10))
    p = draw(st.sampled_from([0.15, 0.3]))
    radius = float(draw(st.sampled_from([3, 5, 8])))
    banks = draw(st.booleans())
    dbg = random_database_graph(n, p, KEYWORDS, seed=seed,
                                bidirected=draw(st.booleans()))

    extra = draw(st.integers(min_value=1, max_value=3))
    new_nodes = []
    for i in range(extra):
        kws = {
            kw for kw in KEYWORDS if rng.random() < 0.4}
        new_nodes.append((kws, f"new{i}", None))
    new_edges = []
    total = n + extra
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        u, v = rng.randrange(total), rng.randrange(total)
        if u != v and (u >= n or v >= n):
            new_edges.append((u, v, float(rng.randint(1, 3))))
    return dbg, radius, GraphDelta(new_nodes, new_edges), banks


@settings(max_examples=40, deadline=None)
@given(growth_cases())
def test_updated_postings_superset_of_rebuild(case):
    dbg, radius, delta, banks = case
    index = CommunityIndex.build(dbg, radius)
    new_dbg, new_index = apply_delta(index, delta,
                                     banks_reweight=banks)
    rebuilt = CommunityIndex.build(new_dbg, radius)
    for kw in KEYWORDS:
        assert set(rebuilt.nodes(kw)) <= set(new_index.nodes(kw))
        assert set(rebuilt.edges(kw)) <= set(new_index.edges(kw))


@settings(max_examples=40, deadline=None)
@given(growth_cases())
def test_queries_exact_after_growth(case):
    dbg, radius, delta, banks = case
    index = CommunityIndex.build(dbg, radius)
    new_dbg, new_index = apply_delta(index, delta,
                                     banks_reweight=banks)
    if any(not new_dbg.nodes_with_keyword(kw) for kw in KEYWORDS):
        return
    search = CommunitySearch(new_dbg, index=new_index)
    got = sorted(search.all_communities(KEYWORDS, radius),
                 key=community_sort_key)
    ref = naive_all(new_dbg, KEYWORDS, radius)
    assert [(c.core, c.cost, c.nodes) for c in got] \
        == [(c.core, c.cost, c.nodes) for c in ref]


@settings(max_examples=30, deadline=None)
@given(growth_cases())
def test_empty_delta_is_identity(case):
    dbg, radius, _, _ = case
    index = CommunityIndex.build(dbg, radius)
    new_dbg, new_index = apply_delta(index, GraphDelta())
    assert new_dbg.n == dbg.n
    for kw in KEYWORDS:
        assert new_index.nodes(kw) == index.nodes(kw)
        assert new_index.edges(kw) == index.edges(kw)
