"""Sharded answers equal unsharded answers, on adversarial graphs.

The central exactness claim of :mod:`repro.shard`: partition any
graph into 2-4 shards (owned regions + 3R halos), answer per shard,
ownership-filter, merge — and the result is indistinguishable from
querying the whole graph. Driven entirely in-process (partition_graph
+ one QueryEngine per shard + the merge library), so Hypothesis can
afford real graph diversity.

Comparison semantics mirror the serving contract: PDall set-equal
with exact costs; PDk cost-sequence equal with per-cost-level core
multisets (within one cost level PDk's emission order is not
specified, sharded or not). One more degree of freedom: when
equal-cost communities straddle the k boundary, *which* of the tied
communities fill the last slots is unspecified too — any selection
from the tied set is a correct top-k stream — so the boundary cost
level is compared against the full tied set (via COMM-all) rather
than demanding the same arbitrary pick.
"""

from hypothesis import given, settings, strategies as st

from repro.core.community import community_sort_key
from repro.engine.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.exceptions import QueryError
from repro.graph.generators import random_database_graph
from repro.shard import (
    FetchResult,
    fetch_many_from,
    filter_owned,
    globalize,
    merge_all,
    merge_top_k,
)

KEYWORDS = ["a", "b", "c", "d"]


@st.composite
def shard_cases(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.08, 0.15, 0.25, 0.4]))
    l = draw(st.integers(min_value=1, max_value=3))
    rmax = float(draw(st.sampled_from([0, 2, 4, 6])))
    bidirected = draw(st.booleans())
    shards = draw(st.integers(min_value=2, max_value=4))
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=bidirected)
    return dbg, KEYWORDS[:l], rmax, min(shards, dbg.n)


def _fleet(dbg, rmax, shards):
    """partition + one engine per shard (index radius R = rmax)."""
    from repro.shard import partition_graph

    result = partition_graph(dbg, rmax, shards)
    engines = [QueryEngine(b.dbg) for b in result.bundles]
    return result, engines


def _shard_all(result, engines, keywords, rmax):
    """Ownership-filtered COMM-all union across the fleet."""
    per_shard = []
    for bundle, engine in zip(result.bundles, engines):
        try:
            answers = engine.run_all(
                QuerySpec.comm_all(keywords, rmax))
        except QueryError:
            answers = []         # keyword absent from this shard
        per_shard.append(filter_owned(
            globalize(answers, bundle.node_map),
            result.owners, bundle.shard_id))
    return merge_all(per_shard)


def _level_keys(communities):
    """(cost, sorted core multiset per cost level) — the PDk
    comparison that tolerates unspecified equal-cost order."""
    levels = {}
    for c in communities:
        levels.setdefault(round(c.cost, 9), []).append(c.core)
    return {cost: sorted(cores) for cost, cores in levels.items()}


@settings(max_examples=40, deadline=None)
@given(shard_cases())
def test_sharded_comm_all_equals_unsharded(case):
    dbg, keywords, rmax, shards = case
    try:
        ref = QueryEngine(dbg).run_all(
            QuerySpec.comm_all(keywords, rmax))
    except QueryError:
        return                   # keyword absent from the graph
    ref = sorted(ref, key=community_sort_key)
    result, engines = _fleet(dbg, rmax, shards)
    merged = _shard_all(result, engines, keywords, rmax)
    # Exact: same cores, same costs, same membership, same ordering.
    assert [(c.core, c.cost) for c in merged] \
        == [(c.core, c.cost) for c in ref]
    assert sorted(c.nodes for c in merged) \
        == sorted(c.nodes for c in ref)


@settings(max_examples=40, deadline=None)
@given(shard_cases(), st.integers(min_value=1, max_value=6))
def test_sharded_top_k_equals_unsharded(case, k):
    dbg, keywords, rmax, shards = case
    engine = QueryEngine(dbg)
    try:
        ref = engine.execute(QuerySpec.comm_k(keywords, k, rmax))
    except QueryError:
        return
    result, engines = _fleet(dbg, rmax, shards)

    def fetch(shard_id, want):
        bundle = result.bundles[shard_id]
        try:
            raw = engines[shard_id].execute(
                QuerySpec.comm_k(keywords, want, rmax))
        except QueryError:
            return FetchResult(kept=[], raw_count=0, exhausted=True)
        exhausted = len(raw) < want
        frontier = raw[-1].cost if raw and not exhausted else None
        return FetchResult(
            kept=filter_owned(globalize(raw, bundle.node_map),
                              result.owners, shard_id),
            raw_count=len(raw), exhausted=exhausted,
            frontier=frontier)

    outcome = merge_top_k(fetch_many_from(fetch),
                          list(range(len(engines))), k)
    assert not outcome.truncated
    assert [round(c.cost, 9) for c in outcome.communities] \
        == [round(c.cost, 9) for c in ref]
    out_levels = _level_keys(outcome.communities)
    ref_levels = _level_keys(ref)
    # The boundary level exists only when the stream was cut at k;
    # an exhausted stream (fewer than k answers) has no free choice.
    boundary = round(ref[-1].cost, 9) if len(ref) == k and ref \
        else None
    for cost, cores in ref_levels.items():
        if cost != boundary:
            assert out_levels[cost] == cores
    if boundary is not None:
        # At the tied boundary both sides pick arbitrarily; demand
        # the same count and that every pick is a genuine community
        # of exactly that cost (the full tied set, via COMM-all).
        assert len(out_levels[boundary]) == len(ref_levels[boundary])
        tied = {c.core for c in engine.run_all(
                    QuerySpec.comm_all(keywords, rmax))
                if round(c.cost, 9) == boundary}
        assert set(out_levels[boundary]) <= tied
        assert set(ref_levels[boundary]) <= tied
