"""Property tests for the "max" cost aggregate: PD stays exact."""

from hypothesis import given, settings, strategies as st

from repro.core.comm_all import all_communities
from repro.core.comm_k import TopKStream
from repro.core.naive import naive_all
from repro.graph.generators import random_database_graph

KEYWORDS = ["a", "b", "c"]


@st.composite
def query_cases(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.1, 0.25, 0.4]))
    l = draw(st.integers(min_value=1, max_value=3))
    rmax = float(draw(st.sampled_from([0, 3, 6, 9])))
    dbg = random_database_graph(n, p, KEYWORDS[:l], seed=seed,
                                bidirected=draw(st.booleans()))
    return dbg, KEYWORDS[:l], rmax


@settings(max_examples=50, deadline=None)
@given(query_cases())
def test_pdall_equals_naive_under_max(case):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax, aggregate="max")
    got = all_communities(dbg, keywords, rmax, aggregate="max")
    assert sorted((c.core, c.cost) for c in got) \
        == sorted((c.core, c.cost) for c in ref)


@settings(max_examples=50, deadline=None)
@given(query_cases())
def test_pdk_ranked_under_max(case):
    dbg, keywords, rmax = case
    ref = naive_all(dbg, keywords, rmax, aggregate="max")
    stream = TopKStream(dbg, keywords, rmax, aggregate="max")
    got = stream.take(len(ref) + 2)
    assert [c.cost for c in got] == [c.cost for c in ref]
    assert sorted(c.core for c in got) == sorted(c.core for c in ref)


@settings(max_examples=40, deadline=None)
@given(query_cases())
def test_max_cost_never_exceeds_rmax(case):
    dbg, keywords, rmax = case
    for community in all_communities(dbg, keywords, rmax,
                                     aggregate="max"):
        assert community.cost <= rmax


@settings(max_examples=40, deadline=None)
@given(query_cases())
def test_sum_and_max_agree_on_core_sets(case):
    dbg, keywords, rmax = case
    by_sum = {c.core for c in all_communities(dbg, keywords, rmax)}
    by_max = {c.core
              for c in all_communities(dbg, keywords, rmax,
                                       aggregate="max")}
    assert by_sum == by_max  # membership is cost-independent
