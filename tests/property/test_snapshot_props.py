"""Property tests for snapshot and legacy-file round trips.

One generator produces adversarial artifacts — composite-tuple
provenance primary keys, unicode keywords and labels, keywords with
empty postings (explicit build vocabularies containing words absent
from the graph), gzip on and off — and the properties assert that

1. a snapshot round-trips the graph and index exactly;
2. the legacy single-file formats (now shims over the same codec)
   round-trip them exactly too;
3. re-serializing loaded content reproduces the identical snapshot id
   — serialization is deterministic, so content-addressing is stable
   across write/load/write cycles.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.csr import CompiledGraph
from repro.graph.database_graph import DatabaseGraph
from repro.graph.io import load_database_graph, save_database_graph
from repro.snapshot import load_snapshot, write_snapshot
from repro.text.inverted_index import CommunityIndex
from repro.text.persistence import load_index, save_index

_TEXT = st.text(
    st.characters(blacklist_categories=("Cs",)),  # no lone surrogates
    min_size=1, max_size=6)

_PK = st.recursive(
    st.one_of(st.integers(-10**6, 10**6), _TEXT),
    lambda children: st.tuples(children, children),
    max_leaves=4)


@st.composite
def artifacts(draw):
    """A ``(dbg, index_or_None, compress)`` case."""
    n = draw(st.integers(min_value=0, max_value=8))
    vocab = draw(st.lists(_TEXT, min_size=1, max_size=4,
                          unique=True))
    edges = draw(st.lists(
        st.tuples(st.integers(0, max(n - 1, 0)),
                  st.integers(0, max(n - 1, 0)),
                  st.floats(min_value=0.0, max_value=9.0,
                            allow_nan=False, width=64)),
        max_size=12)) if n else []
    edges = [e for e in edges if e[0] != e[1]]
    graph = CompiledGraph.from_edges(n, edges)
    keywords = [draw(st.frozensets(st.sampled_from(vocab),
                                   max_size=3)) for _ in range(n)]
    labels = [draw(_TEXT) for _ in range(n)]
    provenance = [draw(st.none() | st.tuples(_TEXT, _PK))
                  for _ in range(n)]
    dbg = DatabaseGraph(graph, keywords, labels, provenance)

    index = None
    if draw(st.booleans()):
        radius = float(draw(st.sampled_from([2, 5, 8])))
        explicit = None
        if draw(st.booleans()):
            # Explicit vocabulary with a word no node carries —
            # produces keywords whose postings are empty.
            explicit = vocab + [draw(_TEXT)]
        index = CommunityIndex.build(dbg, radius, keywords=explicit)
    return dbg, index, draw(st.booleans())


def _same_graph(a: DatabaseGraph, b: DatabaseGraph) -> None:
    assert a.n == b.n and a.m == b.m
    assert list(a.graph.edges()) == list(b.graph.edges())
    for u in range(a.n):
        assert a.keywords_of(u) == b.keywords_of(u)
        assert a.label_of(u) == b.label_of(u)
        assert a.provenance_of(u) == b.provenance_of(u)


def _same_index(a: CommunityIndex, b: CommunityIndex) -> None:
    assert a.radius == b.radius
    # Snapshot round trips preserve every keyword of both maps
    # (including empty posting lists); the legacy format unions the
    # two keyword sets, so presence can only grow, never shrink.
    for kw in a.node_index.keywords():
        assert a.node_index.nodes(kw) == b.node_index.nodes(kw)
    for kw in a.edge_index.keywords():
        assert a.edge_index.edges(kw) == b.edge_index.edges(kw)


@settings(max_examples=30, deadline=None)
@given(case=artifacts())
def test_snapshot_round_trip(case, tmp_path_factory):
    dbg, index, compress = case
    path = tmp_path_factory.mktemp("snap") / "s"
    write_snapshot(path, dbg, index, compress=compress)
    loaded = load_snapshot(path)
    _same_graph(loaded.dbg, dbg)
    if index is None:
        assert loaded.index is None
    else:
        _same_index(index, loaded.index)
        assert loaded.index.node_index.keywords() \
            == index.node_index.keywords()
        assert loaded.index.edge_index.keywords() \
            == index.edge_index.keywords()


@settings(max_examples=30, deadline=None)
@given(case=artifacts())
def test_legacy_files_round_trip(case, tmp_path_factory):
    dbg, index, compress = case
    tmp = tmp_path_factory.mktemp("legacy")
    suffix = ".json.gz" if compress else ".json"
    save_database_graph(dbg, tmp / f"g{suffix}")
    loaded_dbg = load_database_graph(tmp / f"g{suffix}")
    _same_graph(loaded_dbg, dbg)
    if index is not None:
        save_index(index, tmp / f"i{suffix}")
        loaded_index = load_index(tmp / f"i{suffix}", loaded_dbg)
        _same_index(index, loaded_index)


@settings(max_examples=20, deadline=None)
@given(case=artifacts())
def test_snapshot_id_stable_across_reserialization(case,
                                                   tmp_path_factory):
    dbg, index, compress = case
    tmp = tmp_path_factory.mktemp("stable")
    first = write_snapshot(tmp / "a", dbg, index, compress=compress)
    loaded = load_snapshot(tmp / "a")
    second = write_snapshot(tmp / "b", loaded.dbg, loaded.index,
                            compress=not compress)
    assert second.id == first.id
