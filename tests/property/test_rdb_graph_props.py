"""Property tests for the RDB → database-graph materialization."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.rdb.database import Database, foreign_key_pairs
from repro.rdb.graph_builder import build_database_graph, node_lookup
from repro.rdb.schema import Column, ForeignKey, TableSchema


@st.composite
def small_databases(draw):
    """A random Author/Paper/Write database."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n_authors = draw(st.integers(min_value=1, max_value=6))
    n_papers = draw(st.integers(min_value=1, max_value=6))
    n_writes = draw(st.integers(min_value=0, max_value=10))

    db = Database("prop")
    db.create_table(TableSchema(
        "Author", [Column("aid", int), Column("name", str)], "aid",
        text_columns=["name"]))
    db.create_table(TableSchema(
        "Paper", [Column("pid", int), Column("title", str)], "pid",
        text_columns=["title"]))
    db.create_table(TableSchema(
        "Write", [Column("aid", int), Column("pid", int)],
        ("aid", "pid"),
        [ForeignKey("aid", "Author"), ForeignKey("pid", "Paper")]))

    words = ("alpha", "beta", "gamma", "delta")
    for aid in range(n_authors):
        db.insert("Author", {"aid": aid,
                             "name": f"{rng.choice(words)} {aid}"})
    for pid in range(n_papers):
        db.insert("Paper", {"pid": pid,
                            "title": f"{rng.choice(words)} "
                                     f"{rng.choice(words)}"})
    seen = set()
    for _ in range(n_writes):
        pair = (rng.randrange(n_authors), rng.randrange(n_papers))
        if pair in seen:
            continue
        seen.add(pair)
        db.insert("Write", {"aid": pair[0], "pid": pair[1]})
    return db


@settings(max_examples=60, deadline=None)
@given(small_databases())
def test_node_per_tuple_and_edge_per_reference(db):
    dbg = build_database_graph(db)
    assert dbg.n == db.total_rows()
    assert dbg.m == 2 * db.total_references()  # bi-directed


@settings(max_examples=60, deadline=None)
@given(small_databases())
def test_banks_weights_consistent_with_in_degrees(db):
    dbg = build_database_graph(db)
    for u, v, w in dbg.graph.edges():
        assert w == math.log2(1 + dbg.graph.in_degree(v))


@settings(max_examples=60, deadline=None)
@given(small_databases())
def test_provenance_is_a_bijection(db):
    dbg = build_database_graph(db)
    lookup = node_lookup(db, dbg)
    assert len(lookup) == dbg.n
    for (table, pk), node in lookup.items():
        assert db.table(table).contains_pk(pk)
        assert dbg.provenance_of(node) == (table, pk)


@settings(max_examples=60, deadline=None)
@given(small_databases())
def test_edges_match_foreign_key_pairs(db):
    dbg = build_database_graph(db, bidirected=False)
    lookup = node_lookup(db, dbg)
    expected = sorted(
        (lookup[src], lookup[dst])
        for src, dst in foreign_key_pairs(db))
    got = sorted((u, v) for u, v, _ in dbg.graph.edges())
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(small_databases())
def test_keywords_come_from_text_columns(db):
    dbg = build_database_graph(db)
    lookup = node_lookup(db, dbg)
    for row in db.table("Author").scan():
        node = lookup[("Author", row["aid"])]
        for token in row["name"].split():
            assert token.lower() in dbg.keywords_of(node)
    for row in db.table("Write").scan():
        node = lookup[("Write", (row["aid"], row["pid"]))]
        assert dbg.keywords_of(node) == frozenset()
