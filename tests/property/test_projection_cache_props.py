"""Property tests for projection-cache correctness.

The engine's LRU projection cache must be *invisible* except for
speed:

1. answers served through a cached projection are identical — cores,
   costs, ranks, node sets and edge sets — to answers from a fresh
   Algorithm 6 run;
2. applying a :class:`~repro.text.maintenance.GraphDelta` evicts the
   affected entries (generation bump), and post-delta answers match a
   from-scratch rebuild on the grown graph.

These mirror ``test_maintenance_props.py``: growth cases are random
graphs plus append-only deltas, and equality is full structural
equality, edges included.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.community import community_sort_key
from repro.core.search import CommunitySearch
from repro.engine import QueryContext
from repro.graph.generators import random_database_graph
from repro.text.maintenance import GraphDelta

KEYWORDS = ["a", "b"]


def _fingerprint(communities):
    return [(c.core, c.cost, c.centers, c.nodes, c.edges)
            for c in communities]


@st.composite
def growth_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=3, max_value=10))
    p = draw(st.sampled_from([0.15, 0.3]))
    radius = float(draw(st.sampled_from([3, 5, 8])))
    banks = draw(st.booleans())
    dbg = random_database_graph(n, p, KEYWORDS, seed=seed,
                                bidirected=draw(st.booleans()))

    extra = draw(st.integers(min_value=1, max_value=3))
    new_nodes = []
    for i in range(extra):
        kws = {kw for kw in KEYWORDS if rng.random() < 0.4}
        new_nodes.append((kws, f"new{i}", None))
    new_edges = []
    total = n + extra
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        u, v = rng.randrange(total), rng.randrange(total)
        if u != v and (u >= n or v >= n):
            new_edges.append((u, v, float(rng.randint(1, 3))))
    return dbg, radius, GraphDelta(new_nodes, new_edges), banks


@settings(max_examples=40, deadline=None)
@given(growth_cases())
def test_cached_answers_equal_uncached(case):
    dbg, radius, _, _ = case
    if any(not dbg.nodes_with_keyword(kw) for kw in KEYWORDS):
        return
    search = CommunitySearch(dbg)
    search.build_index(radius=radius)
    ctx = QueryContext()
    cold = search.all_communities(KEYWORDS, radius, context=ctx)
    warm = search.all_communities(KEYWORDS, radius, context=ctx)
    assert ctx.counter("projection_runs") == 1
    assert ctx.counter("projection_cache_hits") == 1
    assert _fingerprint(cold) == _fingerprint(warm)
    # ranked answers agree too (same order, same structure)
    k = max(1, len(cold))
    assert _fingerprint(search.top_k(KEYWORDS, k, radius)) \
        == _fingerprint(search.top_k(KEYWORDS, k, radius))


@settings(max_examples=40, deadline=None)
@given(growth_cases())
def test_delta_evicts_and_matches_rebuild(case):
    dbg, radius, delta, banks = case
    if any(not dbg.nodes_with_keyword(kw) for kw in KEYWORDS):
        return
    search = CommunitySearch(dbg)
    search.build_index(radius=radius)
    search.all_communities(KEYWORDS, radius)      # warm the cache
    assert len(search.engine.cache) == 1

    new_dbg, new_index = search.apply_delta(delta,
                                            banks_reweight=banks)
    assert len(search.engine.cache) == 0
    assert new_index.generation == 1
    if any(not new_dbg.nodes_with_keyword(kw) for kw in KEYWORDS):
        return

    ctx = QueryContext()
    got = sorted(search.all_communities(KEYWORDS, radius, context=ctx),
                 key=community_sort_key)
    assert ctx.counter("projection_runs") == 1    # fresh projection

    rebuilt = CommunitySearch(new_dbg)
    rebuilt.build_index(radius=radius)
    ref = sorted(rebuilt.all_communities(KEYWORDS, radius),
                 key=community_sort_key)
    assert _fingerprint(got) == _fingerprint(ref)
