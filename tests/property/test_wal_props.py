"""Property tests for the delta WAL.

Three laws:

1. **Codec round-trip** — any generated record list survives
   frame-encode → scan byte-identically, whatever the payload shapes.
2. **Longest-valid-prefix recovery** — truncate an encoded log at
   *any* byte: the scan recovers exactly the records whose frames lie
   wholly before the cut, and reports the remainder as a torn tail
   (never as corruption, never with an invented record).
3. **Replay determinism** — an engine that crashes after *k*
   acknowledged deltas and replays its WAL answers identically to a
   twin that applied the same deltas live and never crashed. This is
   the crash-recovery contract the chaos tests exercise with real
   SIGKILL; here it is checked over generated graphs and deltas.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import QueryEngine
from repro.engine.spec import QuerySpec
from repro.graph.generators import random_database_graph
from repro.snapshot import SnapshotStore
from repro.text.maintenance import GraphDelta
from repro.wal import (
    WriteAheadLog,
    delta_from_wire,
    delta_to_wire,
    encode_record,
    pending_deltas,
    replay,
    scan_records,
)

KEYWORDS = ["a", "b"]


# ----------------------------------------------------------------------
# 1. codec round-trip
# ----------------------------------------------------------------------
@st.composite
def record_lists(draw):
    count = draw(st.integers(min_value=0, max_value=6))
    records = []
    lsn = 0
    for _ in range(count):
        lsn += draw(st.integers(min_value=1, max_value=3))
        kind = draw(st.sampled_from(["delta", "checkpoint",
                                     "compact"]))
        record = {"type": kind, "lsn": lsn,
                  "base": draw(st.one_of(
                      st.none(), st.text(min_size=1, max_size=8)))}
        if kind == "delta":
            record["delta"] = {
                "nodes": [{"keywords": sorted(draw(st.sets(
                    st.sampled_from(KEYWORDS)))),
                    "label": draw(st.text(max_size=5)),
                    "provenance": None}],
                "edges": [[draw(st.integers(0, 50)),
                           draw(st.integers(0, 50)),
                           draw(st.floats(0, 100, allow_nan=False,
                                          allow_infinity=False))]],
            }
        elif kind == "checkpoint":
            record["snapshot"] = record["base"] or "s"
            record["folded"] = draw(st.integers(0, lsn))
        else:
            record["through"] = draw(st.integers(0, lsn))
        records.append(record)
    return records


@given(record_lists())
@settings(max_examples=60, deadline=None)
def test_codec_round_trips_any_record_list(records):
    data = b"".join(encode_record(r) for r in records)
    scan = scan_records(data)
    assert scan.records == records
    assert scan.good_bytes == len(data)
    assert scan.torn is None


@given(record_lists(), st.data())
@settings(max_examples=60, deadline=None)
def test_any_truncation_recovers_longest_valid_prefix(records, data):
    frames = [encode_record(r) for r in records]
    image = b"".join(frames)
    cut = data.draw(st.integers(min_value=0, max_value=len(image)))
    scan = scan_records(image[:cut])
    # exactly the records whose frames fit wholly before the cut
    offset, intact = 0, 0
    for frame in frames:
        if offset + len(frame) <= cut:
            offset += len(frame)
            intact += 1
        else:
            break
    assert scan.records == records[:intact]
    assert scan.good_bytes == offset
    assert (scan.torn is None) == (cut == offset)


@given(record_lists())
@settings(max_examples=60, deadline=None)
def test_delta_wire_round_trip(records):
    for record in records:
        if record["type"] != "delta":
            continue
        wire = record["delta"]
        assert delta_to_wire(delta_from_wire(wire)) == wire


# ----------------------------------------------------------------------
# 3. replay determinism (crashed-and-replayed == never-crashed)
# ----------------------------------------------------------------------
@st.composite
def ingest_histories(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=3, max_value=8))
    dbg = random_database_graph(n, 0.3, KEYWORDS, seed=seed)
    deltas = []
    total = n
    for i in range(draw(st.integers(min_value=1, max_value=4))):
        new_nodes = []
        for _ in range(rng.randint(0, 2)):
            kws = {kw for kw in KEYWORDS if rng.random() < 0.5}
            new_nodes.append((kws, f"d{i}", None))
        grown = total + len(new_nodes)
        new_edges = []
        for _ in range(rng.randint(0, 3)):
            u, v = rng.randrange(grown), rng.randrange(grown)
            if u != v:
                new_edges.append((u, v, float(rng.randint(1, 3))))
        if not new_nodes and not new_edges:
            new_edges.append((rng.randrange(total),
                              total % max(total - 1, 1), 1.0))
            new_edges = [(u, v, w) for u, v, w in new_edges
                         if u != v] or [(0, 1, 1.0)]
        deltas.append(GraphDelta(new_nodes, new_edges))
        total = grown
    return dbg, deltas, seed


@given(ingest_histories())
@settings(max_examples=15, deadline=None)
def test_replayed_engine_equals_never_crashed_twin(tmp_path_factory,
                                                   case):
    dbg, deltas, seed = case
    radius = 5.0
    from repro.text.inverted_index import CommunityIndex
    index = CommunityIndex.build(dbg, radius)
    root = tmp_path_factory.mktemp(f"walprop{seed}")
    snap = SnapshotStore(root / "store").publish(
        dbg, index, provenance={"seed": seed})

    wal = WriteAheadLog(root / "deltas.wal", fsync="off")
    survivor = QueryEngine.from_snapshot(snap.path)
    try:
        for delta in deltas:  # the never-crashed twin applies live
            lsn = wal.append_delta(delta, base=snap.id)
            survivor.apply_delta(delta, lsn=lsn)

        # "crash": a fresh engine sees only the snapshot + the WAL
        recovered = QueryEngine.from_snapshot(snap.path)
        applied = replay(recovered, str(wal.path))
        assert applied == len(deltas)
        assert recovered.applied_lsn == survivor.applied_lsn
        assert (recovered.dbg.n, recovered.dbg.m) \
            == (survivor.dbg.n, survivor.dbg.m)
        spec = QuerySpec(keywords=tuple(KEYWORDS), rmax=radius)
        assert [c.nodes for c in recovered.run_all(spec)] \
            == [c.nodes for c in survivor.run_all(spec)]
    finally:
        wal.close()


@given(ingest_histories(), st.data())
@settings(max_examples=15, deadline=None)
def test_pending_deltas_split_at_any_checkpoint(tmp_path_factory,
                                                case, data):
    """Checkpointing at any prefix leaves exactly the suffix pending."""
    dbg, deltas, seed = case
    records = []
    for lsn, delta in enumerate(deltas, start=1):
        records.append({"type": "delta", "lsn": lsn, "base": "s0",
                        "banks_reweight": False,
                        "delta": delta_to_wire(delta)})
    fold = data.draw(st.integers(min_value=0, max_value=len(deltas)))
    with_checkpoint = list(records)
    if fold:
        with_checkpoint.append({"type": "checkpoint",
                                "lsn": len(deltas) + 1,
                                "base": "s1", "snapshot": "s1",
                                "folded": fold})
    pending = pending_deltas(with_checkpoint)
    assert [r["lsn"] for r in pending] \
        == list(range(fold + 1, len(deltas) + 1))
