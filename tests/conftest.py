"""Shared fixtures: the paper's toy graphs and small test datasets."""

from __future__ import annotations

import pytest

from repro.datasets.dblp import DBLPConfig, dblp_graph
from repro.datasets.imdb import IMDBConfig, imdb_graph
from repro.datasets.paper_example import figure1_graph, figure4_graph
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="session")
def fig4():
    """The paper's Fig. 4 database graph (13 nodes)."""
    return figure4_graph()


@pytest.fixture(scope="session")
def fig1():
    """The paper's Fig. 1 co-authorship graph (5 nodes)."""
    return figure1_graph()


@pytest.fixture(scope="session")
def tiny_dblp():
    """(db, dbg) for a tiny synthetic DBLP."""
    return dblp_graph(DBLPConfig.tiny())


@pytest.fixture(scope="session")
def tiny_imdb():
    """(db, dbg) for a tiny synthetic IMDB."""
    return imdb_graph(IMDBConfig.tiny())


@pytest.fixture()
def diamond():
    """A 4-node diamond: 0 -> {1, 2} -> 3, with unequal arms."""
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(0, 2, 2.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(2, 3, 0.5)
    return g.compile()
