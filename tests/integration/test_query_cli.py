"""Integration tests for the ``python -m repro`` query CLI."""

import pytest

from repro.cli import main


class TestBuild:
    def test_build_and_query_round_trip(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json.gz"
        index_path = tmp_path / "i.json.gz"
        assert main(["build", "--dataset", "fig4",
                     "--out-graph", str(graph_path),
                     "--out-index", str(index_path),
                     "--radius", "8"]) == 0
        assert graph_path.exists() and index_path.exists()

        assert main(["query", "--graph", str(graph_path),
                     "--index", str(index_path),
                     "--keywords", "a,b,c", "--rmax", "8",
                     "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "cost=7" in out
        assert "5 communities" in out

    def test_build_graph_only(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        assert main(["build", "--dataset", "fig4",
                     "--out-graph", str(graph_path)]) == 0
        assert graph_path.exists()


class TestQuery:
    def test_query_dataset_all_mode(self, capsys):
        assert main(["query", "--dataset", "fig4",
                     "--keywords", "a,b,c", "--rmax", "8",
                     "--all"]) == 0
        out = capsys.readouterr().out
        assert "5 communities (all" in out

    def test_query_baseline_algorithm(self, capsys):
        assert main(["query", "--dataset", "fig4",
                     "--keywords", "a,b,c", "--rmax", "8",
                     "--k", "3", "--algorithm", "bu"]) == 0
        out = capsys.readouterr().out
        assert "3 communities" in out

    def test_query_max_aggregate(self, capsys):
        assert main(["query", "--dataset", "fig4",
                     "--keywords", "a,b,c", "--rmax", "8",
                     "--k", "1", "--aggregate", "max"]) == 0
        out = capsys.readouterr().out
        assert "cost=4" in out

    def test_unknown_dataset_is_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "nope",
                  "--keywords", "a", "--rmax", "8"])

    def test_missing_source_is_error(self):
        with pytest.raises(SystemExit):
            main(["query", "--keywords", "a", "--rmax", "8"])
