"""End-to-end snapshot lifecycle: build → publish → serve → reload.

The PR's acceptance flow, over a real socket: a service starts from a
published snapshot, a newer snapshot is published into the same
store, ``POST /admin/reload`` swaps the engine atomically — open PDk
sessions leased on the old artifact answer ``410 Gone``, new queries
succeed on the new artifact, and ``/metrics`` reports the new
snapshot id. A second test drives the same flow through the actual
``python -m repro serve --snapshot`` process.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.engine import QueryEngine
from repro.service import CommunityService, ServiceClient, SessionGone
from repro.snapshot import SnapshotStore
from repro.text.inverted_index import CommunityIndex

REPO_ROOT = Path(__file__).resolve().parents[2]


def _publish(store_root, radius):
    """Build fig4 at ``radius`` and publish it; returns the id."""
    dbg = figure4_graph()
    index = CommunityIndex.build(dbg, radius)
    snapshot = SnapshotStore(store_root).publish(
        dbg, index, provenance={"dataset": "fig4",
                                "index_radius": radius})
    return snapshot.id


class TestReloadInProcess:
    def test_reload_swaps_sessions_and_metrics(self, tmp_path):
        store_root = tmp_path / "store"
        old_id = _publish(store_root, radius=FIG4_RMAX)
        engine = QueryEngine.from_snapshot(
            SnapshotStore(store_root).resolve())
        with CommunityService(engine, port=0,
                              snapshot_source=store_root).start() \
                as service:
            client = ServiceClient(service.url, timeout=30.0)
            assert client.health()["snapshot"] == old_id

            session = client.open_session(list(FIG4_QUERY),
                                          FIG4_RMAX)
            assert session.generation == old_id
            assert len(session.next(1)) == 1

            # Reload with nothing new published: a no-op, the old
            # session stays valid.
            response = client.admin_reload()
            assert response == {
                "reloaded": False, "snapshot": old_id,
                "generation": old_id,
                "loaded_at": response["loaded_at"],
                "warmed": 0}
            assert len(session.next(1)) == 1

            # Publish newer content (different radius -> different
            # id) and reload: atomic swap.
            new_id = _publish(store_root, radius=4.0)
            assert new_id != old_id
            response = client.admin_reload()
            assert response["reloaded"] is True
            assert response["snapshot"] == new_id

            # The old lease observes the swap as 410 Gone ...
            with pytest.raises(SessionGone):
                session.next(1)
            # ... while new queries and sessions work immediately.
            fresh = client.query(list(FIG4_QUERY), 4.0, k=2)
            assert fresh["count"] >= 1
            health = client.health()
            assert health["generation"] == new_id
            assert health["snapshot"] == new_id
            metrics = client.metrics()
            assert f'snapshot_id="{new_id}"' in metrics
            assert "repro_snapshot_loaded_timestamp_seconds" \
                in metrics

    def test_warm_path_survives_reload(self, tmp_path):
        """The warm-path acceptance flow: repeat queries answer
        ``cached: true``; a reload invalidates the cache but re-warms
        it from the query log before responding, so the next repeat
        is immediately a hit again."""
        store_root = tmp_path / "store"
        _publish(store_root, radius=FIG4_RMAX)
        engine = QueryEngine.from_snapshot(
            SnapshotStore(store_root).resolve())
        with CommunityService(engine, port=0,
                              snapshot_source=store_root).start() \
                as service:
            client = ServiceClient(service.url, timeout=30.0)
            cold = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3)
            assert cold["cached"] is False
            warm = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3)
            assert warm["cached"] is True
            assert warm["communities"] == cold["communities"]
            assert warm["stats"]["counters"]["result_cache_hits"] \
                == 1
            metrics = client.metrics()
            assert "repro_result_cache_hits_total 1" in metrics
            assert "repro_result_cache_misses_total 1" in metrics
            log = client.request("GET", "/admin/querylog")
            assert log["querylog"]["recorded"] == 2
            assert log["top"][0]["count"] == 2

            # New content (a grown graph at the same radius), new
            # generation: the reload invalidates the cache, then
            # replays the log's head into it.
            from repro.text.maintenance import (
                GraphDelta,
                extend_database_graph,
            )

            base = figure4_graph()
            grown, _ = extend_database_graph(base, GraphDelta(
                new_nodes=[({"a"}, "extra", None)],
                new_edges=[(base.n, 0, 1.0), (0, base.n, 1.0)]))
            new_id = SnapshotStore(store_root).publish(
                grown, CommunityIndex.build(grown, FIG4_RMAX),
                provenance={"dataset": "fig4-grown",
                            "index_radius": FIG4_RMAX}).id
            response = client.admin_reload()
            assert response["snapshot"] == new_id
            assert response["warmed"] == 1
            # First client repeat after the reload: already warm.
            rewarmed = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3)
            assert rewarmed["cached"] is True
            health = client.health()
            assert health["result_cache"]["result_cache_entries"] \
                == 1.0
            assert health["querylog"]["recorded"] == 3

    def test_reload_explicit_path_overrides_source(self, tmp_path):
        old_id = _publish(tmp_path / "a", radius=FIG4_RMAX)
        new_id = _publish(tmp_path / "b", radius=4.0)
        engine = QueryEngine.from_snapshot(
            SnapshotStore(tmp_path / "a").resolve())
        with CommunityService(engine, port=0).start() as service:
            client = ServiceClient(service.url, timeout=30.0)
            assert client.health()["snapshot"] == old_id
            response = client.admin_reload(
                path=str(tmp_path / "b"))
            assert response["snapshot"] == new_id

    def test_reload_without_source_is_400(self, fig4):
        engine = QueryEngine(fig4)
        engine.build_index(radius=FIG4_RMAX)
        with CommunityService(engine, port=0).start() as service:
            client = ServiceClient(service.url, timeout=30.0)
            from repro.service import BadRequest
            with pytest.raises(BadRequest):
                client.admin_reload()


class TestServeSnapshotCli:
    def test_serve_snapshot_process_reloads(self, tmp_path):
        """`python -m repro serve --snapshot` + reload, over a real
        process boundary — what a deployment actually runs."""
        store_root = tmp_path / "store"
        assert main(["snapshot", "build", "--dataset", "fig4",
                     "--store", str(store_root),
                     "--radius", str(FIG4_RMAX)]) == 0
        old_id = SnapshotStore(store_root).latest_id()

        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--snapshot", str(store_root), "--port", "0",
             "--port-file", str(port_file)],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, cwd=str(REPO_ROOT))
        try:
            deadline = time.time() + 30
            while not port_file.exists() and time.time() < deadline:
                time.sleep(0.1)
            assert port_file.exists(), "server never bound"
            host, port = port_file.read_text().split()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=30.0)
            assert client.health()["snapshot"] == old_id

            assert main(["snapshot", "build", "--dataset", "fig4",
                         "--store", str(store_root),
                         "--radius", "4"]) == 0
            new_id = SnapshotStore(store_root).latest_id()
            assert new_id != old_id

            response = client.admin_reload()
            assert response["snapshot"] == new_id
            result = client.query(list(FIG4_QUERY), 4.0, k=1)
            assert result["count"] == 1
            assert f'snapshot_id="{new_id}"' in client.metrics()
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_verify_rejects_flipped_byte_via_cli(self, tmp_path,
                                                 capsys):
        store_root = tmp_path / "store"
        assert main(["snapshot", "build", "--dataset", "fig4",
                     "--store", str(store_root)]) == 0
        assert main(["snapshot", "verify", str(store_root)]) == 0

        snapshot_dir = SnapshotStore(store_root).resolve()
        target = snapshot_dir / "postings.bin"
        data = bytearray(target.read_bytes())
        data[3] ^= 0x01
        target.write_bytes(bytes(data))
        assert main(["snapshot", "verify", str(store_root)]) == 2
        err = capsys.readouterr().err
        assert "checksum" in err
