"""End-to-end pipelines on the synthetic datasets (tiny scale).

RDB -> database graph -> inverted indexes -> projection -> all four
algorithms, checked for mutual agreement on real(istic) data shapes.
"""

import pytest

from repro.core.community import community_sort_key
from repro.core.search import CommunitySearch
from repro.datasets.vocab import query_keywords


@pytest.fixture(scope="module")
def dblp_search(tiny_dblp):
    _, dbg = tiny_dblp
    search = CommunitySearch(dbg)
    search.build_index(radius=8.0)
    return search


@pytest.fixture(scope="module")
def imdb_search(tiny_imdb):
    _, dbg = tiny_imdb
    search = CommunitySearch(dbg)
    search.build_index(radius=13.0)
    return search


def agreement_check(search, keywords, rmax):
    """All four algorithms produce the same core/cost sets."""
    reference = None
    for alg in ("pd", "bu", "td", "naive"):
        got = sorted(
            (c.core, round(c.cost, 9))
            for c in search.all_communities(keywords, rmax,
                                            algorithm=alg))
        if reference is None:
            reference = got
        assert got == reference, f"{alg} disagrees"
    return reference


class TestDBLPPipeline:
    def test_algorithms_agree(self, dblp_search):
        keywords = query_keywords(0.0015, 2)
        agreement_check(dblp_search, keywords, 6.0)

    def test_projection_equivalence(self, dblp_search):
        keywords = query_keywords(0.0015, 2)
        with_proj = sorted(
            dblp_search.all_communities(keywords, 6.0,
                                        use_projection=True),
            key=community_sort_key)
        without = sorted(
            dblp_search.all_communities(keywords, 6.0,
                                        use_projection=False),
            key=community_sort_key)
        assert [(c.core, c.cost, c.nodes, c.edges) for c in with_proj] \
            == [(c.core, c.cost, c.nodes, c.edges) for c in without]

    def test_top_k_prefix_of_all(self, dblp_search):
        keywords = query_keywords(0.0015, 2)
        everything = sorted(
            dblp_search.all_communities(keywords, 6.0),
            key=community_sort_key)
        if not everything:
            pytest.skip("no communities at tiny scale")
        top = dblp_search.top_k(keywords, min(3, len(everything)), 6.0)
        assert [c.cost for c in top] \
            == [c.cost for c in everything[: len(top)]]

    def test_interactive_stream_continues(self, dblp_search):
        keywords = query_keywords(0.0015, 2)
        stream = dblp_search.top_k_stream(keywords, 6.0)
        first = stream.take(1)
        rest = stream.more(1000)
        everything = dblp_search.all_communities(keywords, 6.0)
        assert len(first) + len(rest) == len(everything)

    def test_provenance_back_to_tuples(self, dblp_search, tiny_dblp):
        db, dbg = tiny_dblp
        keywords = query_keywords(0.0015, 2)
        results = dblp_search.all_communities(keywords, 6.0)
        if not results:
            pytest.skip("no communities at tiny scale")
        for node in results[0].nodes:
            table, pk = dbg.provenance_of(node)
            assert db.table(table).contains_pk(pk)


class TestIMDBPipeline:
    def test_algorithms_agree(self, imdb_search):
        keywords = query_keywords(0.0015, 2)
        agreement_check(imdb_search, keywords, 11.0)

    def test_projection_equivalence(self, imdb_search):
        keywords = query_keywords(0.0015, 2)
        with_proj = sorted(
            imdb_search.all_communities(keywords, 11.0,
                                        use_projection=True),
            key=community_sort_key)
        without = sorted(
            imdb_search.all_communities(keywords, 11.0,
                                        use_projection=False),
            key=community_sort_key)
        assert [(c.core, c.cost) for c in with_proj] \
            == [(c.core, c.cost) for c in without]

    def test_multi_center_communities_exist(self, imdb_search):
        # the paper's motivation for IMDB: dense graphs produce
        # multi-center communities
        keywords = query_keywords(0.0015, 2)
        results = imdb_search.all_communities(keywords, 11.0)
        if not results:
            pytest.skip("no communities at tiny scale")
        assert any(c.is_multi_center() for c in results)

    def test_projection_smaller_than_graph(self, imdb_search,
                                           tiny_imdb):
        _, dbg = tiny_imdb
        keywords = query_keywords(0.0015, 2)
        projection = imdb_search.project(keywords, 11.0)
        assert projection.n < dbg.n
