"""Socket-level integration tests for the community-query service.

A real :class:`~repro.service.server.CommunityService` binds an
ephemeral port; every request here travels through HTTP via
:class:`~repro.service.client.ServiceClient`. Covers the three
acceptance properties:

* interactive enlargement (k=10 -> more) re-runs neither Algorithm 6
  nor the PDk seeding — asserted on the session's cumulative
  ``QueryContext`` stats coming back over the wire;
* a session leased before ``apply_delta`` answers ``410 Gone``
  afterwards, and fresh sessions re-warm the projection cache;
* concurrent load past the worker pool sheds with 429/503 instead of
  queueing unboundedly.
"""

import threading
import time

import pytest

from repro.core.search import CommunitySearch
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.engine import QueryEngine
from repro.engine.registry import AlgorithmSpec, default_registry
from repro.service import (
    BadRequest,
    CommunityService,
    DeadlineExceeded,
    NotFound,
    Overloaded,
    ServiceClient,
    SessionGone,
)
from repro.text.maintenance import GraphDelta

FIG4_TOTAL = 5


@pytest.fixture()
def engine(fig4):
    e = QueryEngine(fig4)
    e.build_index(radius=FIG4_RMAX)
    return e


@pytest.fixture()
def service(engine):
    with CommunityService(engine, port=0).start() as svc:
        yield svc


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestQueryEndpoint:
    def test_topk_matches_in_process_answers(self, client, fig4):
        search = CommunitySearch(fig4)
        search.build_index(radius=FIG4_RMAX)
        expected = search.top_k(list(FIG4_QUERY), 3, FIG4_RMAX)
        got = client.query_communities(list(FIG4_QUERY), FIG4_RMAX,
                                       k=3)
        assert got == expected

    def test_comm_all_without_k(self, client):
        response = client.query(list(FIG4_QUERY), FIG4_RMAX)
        assert response["count"] == FIG4_TOTAL
        assert response["query"]["mode"] == "all"

    def test_baseline_algorithm_over_http(self, client):
        response = client.query(list(FIG4_QUERY), FIG4_RMAX, k=3,
                                algorithm="bu")
        assert response["count"] == 3

    def test_labels_round_trip(self, client, fig4):
        response = client.query(list(FIG4_QUERY), FIG4_RMAX, k=1,
                                labels=True)
        community = response["communities"][0]
        assert community["labels"][str(community["nodes"][0])] \
            == fig4.label_of(community["nodes"][0])

    def test_stats_ride_along(self, client):
        response = client.query(list(FIG4_QUERY), FIG4_RMAX, k=2)
        assert response["stats"]["counters"]["communities"] == 2
        assert "project" in response["stats"]["timings"]

    def test_unknown_keyword_is_400(self, client):
        with pytest.raises(BadRequest):
            client.query(["nosuchkeyword"], FIG4_RMAX, k=1)

    def test_malformed_body_is_400(self, client):
        with pytest.raises(BadRequest):
            client.request("POST", "/query", {"rmax": 8.0})

    def test_unknown_route_is_404(self, client):
        with pytest.raises(NotFound):
            client.request("GET", "/nope")

    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["generation"] == "g1"
        assert health["snapshot"] is None   # engine built in-memory


class TestInteractiveSessions:
    def test_enlargement_is_free(self, client):
        """k=10 then enlarge: zero additional project-stage time and
        zero additional projection runs — PDk resumed, Exp-3 style."""
        with client.open_session(list(FIG4_QUERY), FIG4_RMAX) as s:
            first = s.next(2)
            stats_first = s.last_stats
            project_seconds = stats_first["timings"].get("project",
                                                         0.0)
            projection_runs = stats_first["counters"].get(
                "projection_runs", 0)

            more = s.next(2)              # enlarge k
            stats_more = s.last_stats
            assert len(first) == 2 and len(more) == 2
            # The cumulative project stage did not move at all.
            assert stats_more["timings"].get("project", 0.0) \
                == project_seconds
            assert stats_more["counters"].get("projection_runs", 0) \
                == projection_runs
            # But enumerate kept accruing (real work happened).
            assert stats_more["counters"]["communities"] == 4
            costs = [c.cost for c in first + more]
            assert costs == sorted(costs)

    def test_session_exhaustion_over_http(self, client):
        with client.open_session(list(FIG4_QUERY), FIG4_RMAX) as s:
            everything = s.next(100)
            assert len(everything) == FIG4_TOTAL
            assert s.exhausted
            assert s.next(10) == []

    def test_unknown_session_404(self, client):
        with pytest.raises(NotFound):
            client.request("POST", "/sessions/deadbeef/next",
                           {"k": 1})

    def test_closed_session_404(self, client):
        session = client.open_session(list(FIG4_QUERY), FIG4_RMAX)
        session.close()
        with pytest.raises(NotFound):
            session.next(1)

    def test_short_ttl_session_expires_410(self, client):
        session = client.open_session(list(FIG4_QUERY), FIG4_RMAX,
                                      ttl_seconds=0.05)
        time.sleep(0.2)
        with pytest.raises(SessionGone):
            session.next(1)


class TestDeltaInvalidation:
    def test_delta_410_and_cache_rewarm(self, client, service, fig4):
        """The satellite integration property: a lease goes 410 after
        apply_delta, and fresh sessions over the same keywords warm
        then hit the (re-warmed) projection cache."""
        session = client.open_session(list(FIG4_QUERY), FIG4_RMAX)
        assert len(session.next(2)) == 2

        delta = GraphDelta(new_nodes=[({"a"}, "extra", None)],
                           new_edges=[(fig4.n, 0, 1.0),
                                      (0, fig4.n, 1.0)])
        service.engine.apply_delta(delta)

        with pytest.raises(SessionGone):
            session.next(1)

        # First fresh session re-projects against the grown graph...
        rewarm = client.open_session(list(FIG4_QUERY), FIG4_RMAX)
        assert rewarm.last_stats["counters"].get(
            "projection_runs", 0) == 1
        # ...and the next one over the same keywords attaches to the
        # re-warmed result-cache entry (no projection, no enumeration).
        hot = client.open_session(list(FIG4_QUERY), FIG4_RMAX)
        assert hot.last_stats["counters"].get(
            "projection_runs", 0) == 0
        assert hot.last_stats["counters"].get(
            "result_cache_hits", 0) == 1
        # The fresh lease streams the *new* graph: the added keyword
        # node yields strictly more communities than fig4's 5.
        assert len(rewarm.next(100)) > FIG4_TOTAL
        # And the wire-visible metrics recorded the churn.
        metrics = client.metrics()
        assert "repro_sessions_stale_dropped_total 1" in metrics
        assert "repro_engine_generation 2" in metrics


class TestMetricsEndpoint:
    def test_metrics_expose_stages_cache_queue_and_latency(
            self, client):
        client.query(list(FIG4_QUERY), FIG4_RMAX, k=2)
        client.query(list(FIG4_QUERY), FIG4_RMAX, k=2)   # cache hit
        text = client.metrics()
        assert 'repro_stage_seconds_total{stage="project"}' in text
        assert 'repro_stage_seconds_total{stage="enumerate"}' in text
        assert 'repro_query_events_total{event="communities"} 4' \
            in text
        # Every CacheStats counter is present (the as_dict audit).
        for name in ("hits", "misses", "evictions", "invalidations",
                     "stale_drops", "lookups"):
            assert f"repro_projection_cache_{name}_total" in text
        assert "repro_projection_cache_hit_rate" in text
        assert "repro_queue_depth 0" in text
        assert "repro_in_flight 0" in text
        assert 'repro_requests_total{path="/query",status="200"} 2' \
            in text
        assert 'repro_request_seconds_count{path="/query"} 2' in text

    def test_metrics_content_type_is_prometheus_text(self, service):
        import urllib.request
        with urllib.request.urlopen(service.url + "/metrics") as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")


class TestSheddingOverHttp:
    def test_load_at_2x_pool_sheds_429_503(self, fig4):
        """The acceptance load test over a real socket: 2x the pool's
        capacity in simultaneous requests -> excess sheds fast with
        429/503, the admitted remainder completes."""
        registry = default_registry()

        def slow_all(dbg, keywords, rmax, *, node_lists=None,
                     aggregate="sum", budget_seconds=None, stats=None):
            time.sleep(0.3)
            return iter([])

        def slow_top_k(dbg, keywords, k, rmax, *, node_lists=None,
                       aggregate="sum", budget_seconds=None,
                       stats=None):
            time.sleep(0.3)
            return []

        registry.register(AlgorithmSpec("slow", slow_all, slow_top_k))
        engine = QueryEngine(fig4, registry=registry)
        engine.build_index(radius=FIG4_RMAX)
        capacity = 2 + 2                      # workers + queue depth
        with CommunityService(engine, port=0, workers=2,
                              queue_depth=2).start() as service:
            client = ServiceClient(service.url, timeout=30.0)
            outcomes = []
            lock = threading.Lock()
            barrier = threading.Barrier(2 * capacity)

            def hit():
                barrier.wait()
                try:
                    client.query(list(FIG4_QUERY), FIG4_RMAX, k=1,
                                 algorithm="slow",
                                 deadline_seconds=10.0)
                    outcome = 200
                except Overloaded:
                    outcome = 429
                except DeadlineExceeded:
                    outcome = 503
                with lock:
                    outcomes.append(outcome)

            threads = [threading.Thread(target=hit)
                       for _ in range(2 * capacity)]
            start = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            elapsed = time.monotonic() - start

            assert len(outcomes) == 2 * capacity
            assert outcomes.count(200) >= 2
            shed = outcomes.count(429) + outcomes.count(503)
            assert shed >= 2
            # Unbounded queueing would serialize 8 x 0.3s behind 2
            # workers; shedding keeps the burst well under that.
            assert elapsed < 8 * 0.3
            metrics = client.metrics()
            assert "repro_admission_shed_queue_full_total" in metrics
            status_lines = [line for line in metrics.splitlines()
                            if line.startswith("repro_requests_total")]
            assert any('status="429"' in line or 'status="503"' in line
                       for line in status_lines)
