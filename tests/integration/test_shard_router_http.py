"""Socket-level integration tests for the sharded serving tier.

A fig4 snapshot is partitioned into two shard snapshots; each shard
runs a genuine :class:`CommunityService` on an ephemeral port, and a
started :class:`RouterService` fans out to them over real HTTP.
Covers the acceptance properties: routed answers identical to a
single-snapshot service, and a dead shard degrading to a 200 partial
response (``shards_answered``/``shards_total``) instead of a 503.
"""

import pytest

from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX, \
    figure4_graph
from repro.engine.engine import QueryEngine
from repro.service import CommunityService, ServiceClient
from repro.shard import RouterService, partition_snapshot
from repro.snapshot.store import SnapshotStore
from repro.text.inverted_index import CommunityIndex

FIG4_TOTAL = 5


def _build_fleet(tmp, shard_timeout=10.0, retries=2):
    """Partition fig4 and start (router, shard services, reference)."""
    dbg = figure4_graph()
    store = SnapshotStore(tmp / "store")
    snapshot = store.publish(dbg, CommunityIndex.build(dbg, 10.0),
                             provenance={"dataset": "fig4"})
    manifest, _ = partition_snapshot(tmp / "store", tmp / "parts", 2)
    shards = []
    for entry in manifest.shards:
        engine = QueryEngine.from_snapshot(
            tmp / "parts" / entry.store / entry.snapshot_id)
        shards.append(CommunityService(engine, port=0).start())
    router = RouterService(
        manifest, [s.url for s in shards], root=tmp / "parts",
        shard_timeout=shard_timeout, shard_retries=retries).start()
    reference = CommunityService(
        QueryEngine.from_snapshot(snapshot.path), port=0).start()
    return router, shards, reference


def _norm(response):
    return sorted((tuple(c["core"]), round(c["cost"], 9))
                  for c in response["communities"])


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("router_http")
    router, shards, reference = _build_fleet(tmp)
    yield router, shards, reference
    router.shutdown()
    reference.shutdown()
    for service in shards:
        service.shutdown()


class TestRoutedAnswersOverHttp:
    def test_query_matches_single_snapshot(self, fleet):
        router, _, reference = fleet
        via_router = ServiceClient(router.url, timeout=30.0)
        single = ServiceClient(reference.url, timeout=30.0)
        for extra in ({"mode": "all"}, {"k": 1}, {"k": 3}, {"k": 50}):
            body = {"keywords": list(FIG4_QUERY),
                    "rmax": FIG4_RMAX, **extra}
            routed = via_router.request("POST", "/query", body)
            ref = single.request("POST", "/query", body)
            assert routed["count"] == ref["count"]
            assert _norm(routed) == _norm(ref)
            if "k" in extra:
                assert [round(c["cost"], 9)
                        for c in routed["communities"]] \
                    == [round(c["cost"], 9)
                        for c in ref["communities"]]
            assert routed["shards_answered"] \
                == routed["shards_total"] == 2
            assert routed["partial"] is False

    def test_batch_matches_single_snapshot(self, fleet):
        router, _, reference = fleet
        body = {"queries": [
            {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 2},
            {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
             "mode": "all"},
        ]}
        routed = ServiceClient(router.url, timeout=30.0).request(
            "POST", "/batch", body)
        ref = ServiceClient(reference.url, timeout=30.0).request(
            "POST", "/batch", body)
        assert routed["queries"] == ref["queries"] == 2
        for got, want in zip(routed["results"], ref["results"]):
            assert _norm(got) == _norm(want)

    def test_healthz_and_metrics_over_http(self, fleet):
        router, _, _ = fleet
        client = ServiceClient(router.url, timeout=30.0)
        health = client.request("GET", "/healthz")
        assert health["status"] == "ok"
        assert health["shards_reachable"] == 2
        metrics = client.metrics()
        assert "repro_router_queries_total" in metrics
        assert "repro_router_shards 2" in metrics


class TestDegradedFleet:
    def test_dead_shard_yields_200_partial(self, tmp_path):
        """The acceptance scenario: one backend down -> the router
        still answers 200 with the surviving shard's communities and
        reports the gap instead of failing the whole query."""
        router, shards, reference = _build_fleet(
            tmp_path, shard_timeout=2.0, retries=0)
        try:
            client = ServiceClient(router.url, timeout=30.0)
            shards[1].shutdown()

            body = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
                    "mode": "all"}
            routed = client.request("POST", "/query", body)
            assert routed["partial"] is True
            assert routed["shards_answered"] == 1
            assert routed["shards_total"] == 2
            # The surviving shard's answers are a strict subset of
            # the full result set.
            full = ServiceClient(reference.url, timeout=30.0).request(
                "POST", "/query", body)
            assert 0 < routed["count"] < full["count"] + 1
            assert set(_norm(routed)) <= set(_norm(full))

            health = client.request("GET", "/healthz")
            assert health["status"] == "degraded"
            assert health["shards_reachable"] == 1
            down = [row for row in health["shards"]
                    if row["status"] != "ok"]
            assert len(down) == 1 and "error" in down[0]

            metrics = client.metrics()
            assert "repro_router_partial_results_total" in metrics
            assert "repro_router_shard_failures_total" in metrics
        finally:
            router.shutdown()
            reference.shutdown()
            shards[0].shutdown()
