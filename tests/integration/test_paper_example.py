"""End-to-end reproduction of the paper's running examples.

These tests assert every concrete quantity the paper states about
Figs. 1–7 and Table I, so the Fig. 4 reconstruction is verified
mechanically.
"""

from repro.core import all_communities, get_community, naive_all, top_k
from repro.core.search import CommunitySearch
from repro.datasets.paper_example import (
    FIG1_QUERY,
    FIG1_RMAX,
    FIG4_EDGES,
    FIG4_QUERY,
    FIG4_RMAX,
    TABLE1_RANKING,
    figure1_graph,
    figure4_graph,
    node_id,
    node_label,
)


class TestTable1:
    def test_pdk_reproduces_table1_exactly(self, fig4):
        results = top_k(fig4, list(FIG4_QUERY), 5, FIG4_RMAX)
        assert len(results) == 5
        for community, (core, cost, centers) in zip(results,
                                                    TABLE1_RANKING):
            assert tuple(node_label(u) for u in community.core) == core
            assert community.cost == cost
            assert tuple(node_label(u)
                         for u in community.centers) == centers

    def test_pdall_same_set_as_table1(self, fig4):
        results = all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX)
        got = sorted(
            (tuple(node_label(u) for u in c.core), c.cost)
            for c in results)
        want = sorted((core, cost) for core, cost, _ in TABLE1_RANKING)
        assert got == want

    def test_naive_agrees(self, fig4):
        results = naive_all(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0, 14.0,
                                             15.0]

    def test_pdall_first_core_matches_paper_walkthrough(self, fig4):
        # Section IV: first core is [v4, v8, v6] with cost 7, and the
        # next core found is [v4, v2, v3].
        results = all_communities(fig4, list(FIG4_QUERY), FIG4_RMAX)
        assert tuple(node_label(u) for u in results[0].core) \
            == ("v4", "v8", "v6")
        assert tuple(node_label(u) for u in results[1].core) \
            == ("v4", "v2", "v3")


class TestFig5Communities:
    def test_r5_structure_matches_fig7(self, fig4):
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        r5 = get_community(fig4.graph, core, FIG4_RMAX)
        assert tuple(node_label(u) for u in r5.centers) \
            == ("v11", "v12")
        assert tuple(node_label(u) for u in r5.pnodes) == ("v10",)

    def test_r5_cost_arithmetic_from_paper(self, fig4):
        # paper: at v11 the total is (2+3) + 0 + (3+3) = 11; at v12 it
        # is (3+2+3) + 3 + 3 = 14
        from repro.core.getcommunity import find_centers
        core = tuple(node_id(x) for x in ("v13", "v8", "v11"))
        centers = find_centers(fig4.graph, core, FIG4_RMAX)
        assert centers[node_id("v11")] == 11.0
        assert centers[node_id("v12")] == 14.0

    def test_edge_w_v1_v2_is_5(self):
        assert ("v1", "v2", 5.0) in FIG4_EDGES


class TestFig1:
    def test_two_communities_for_kate_smith(self):
        dbg = figure1_graph()
        results = all_communities(dbg, list(FIG1_QUERY), FIG1_RMAX)
        labels = sorted(
            tuple(dbg.label_of(u) for u in c.core) for c in results)
        assert labels == [
            ("Kate Green", "Jim Smith"),
            ("Kate Green", "John Smith"),
        ]

    def test_first_community_is_multi_center(self):
        # Fig. 3(a): both paper1 and paper2 are centers.
        dbg = figure1_graph()
        best = top_k(dbg, list(FIG1_QUERY), 1, FIG1_RMAX)[0]
        assert sorted(dbg.label_of(u) for u in best.centers) \
            == ["paper1", "paper2"]
        assert best.is_multi_center()

    def test_paper1_to_kate_via_paper2_within_radius(self):
        # paper text: path paper1 -> paper2 -> Kate has weight 5 < 6
        dbg = figure1_graph()
        from repro.graph.dijkstra import single_source_distances
        paper1 = [u for u in range(dbg.n)
                  if dbg.label_of(u) == "paper1"][0]
        dist = single_source_distances(dbg.graph, paper1)
        kate = [u for u in range(dbg.n)
                if dbg.label_of(u) == "Kate Green"][0]
        assert dist[kate] == 2.0  # direct edge is even shorter


class TestFacadeOnFig4:
    def test_index_projection_query_pipeline(self, fig4):
        search = CommunitySearch(fig4)
        search.build_index(radius=FIG4_RMAX)
        projection = search.project(list(FIG4_QUERY), FIG4_RMAX)
        assert projection.n <= fig4.n
        results = search.top_k(list(FIG4_QUERY), 5, FIG4_RMAX)
        assert [c.cost for c in results] == [7.0, 10.0, 11.0, 14.0,
                                             15.0]

    def test_describe_renders_labels(self, fig4):
        community = top_k(fig4, list(FIG4_QUERY), 1, FIG4_RMAX)[0]
        text = community.describe(fig4)
        assert "v4" in text and "cost=7" in text
