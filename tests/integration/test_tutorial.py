"""The tutorial's code blocks must actually run.

Concatenates every ```python block in docs/TUTORIAL.md and executes it
in a temporary directory (the persistence section writes files).
"""

import contextlib
import io
import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"


def test_tutorial_snippets_execute(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 6
    code = "\n".join(blocks)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        exec(compile(code, "tutorial", "exec"), {})  # noqa: S102
    out = buffer.getvalue()
    assert "DatabaseGraph" in out
    assert "Community(cost=" in out


def test_tutorial_mentions_every_pipeline_stage():
    text = TUTORIAL.read_text()
    for landmark in ("TableSchema", "build_database_graph",
                     "build_index", "top_k_stream", "GraphDelta",
                     "community_to_dot"):
        assert landmark in text
