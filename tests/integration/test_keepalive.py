"""Connection reuse: one socket per peer, reconnect-once when stale.

Both HTTP clients — the threaded :class:`ServiceClient` and the
event-loop :class:`AsyncShardClient` — keep sockets alive across
requests: a burst of calls opens exactly one physical connection
(:attr:`connections_opened` is the telemetry the tests read). When a
pooled socket goes stale because the server restarted, the next
request replays once on a fresh connection instead of surfacing the
torn socket to the caller.
"""

import asyncio
import json
import socket
import threading

from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.engine import QueryEngine
from repro.service import CommunityService, ServiceClient
from repro.shard.aio import AsyncShardClient


def _service(port=0):
    engine = QueryEngine(figure4_graph())
    engine.build_index(radius=FIG4_RMAX)
    return CommunityService(engine, port=port).start()


BODY = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 1}


class RudeServer:
    """An HTTP server that advertises keep-alive but hangs up anyway.

    Answers every request 200 with ``Connection: keep-alive``, then
    closes the socket — so a client that pooled the connection finds
    it stale on the next request and must replay on a fresh one. Each
    accepted connection serves exactly one exchange.
    """

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.url = "http://127.0.0.1:%d" % \
            self._listener.getsockname()[1]
        self.served = 0
        self._thread = threading.Thread(target=self._serve,
                                        daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return               # listener closed: shut down
            with conn:
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                if b"\r\n\r\n" not in data:
                    continue
                head, _, rest = data.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n")[1:]:
                    name, _, value = line.partition(b":")
                    if name.strip().lower() == b"content-length":
                        length = int(value.strip())
                while len(rest) < length:
                    rest += conn.recv(65536)
                body = json.dumps({"count": 1}).encode()
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Connection: keep-alive\r\n"
                    b"Content-Length: %d\r\n\r\n%s"
                    % (len(body), body))
                self.served += 1
            # ``with conn`` closed the socket: the hang-up.

    def close(self):
        self._listener.close()
        self._thread.join(timeout=5.0)


class TestServiceClientKeepAlive:
    def test_burst_reuses_one_connection(self):
        with _service() as service:
            with ServiceClient(service.url, timeout=30.0) as client:
                for _ in range(12):
                    reply = client.request("POST", "/query", BODY)
                    assert reply["count"] == 1
                assert client.connections_opened == 1

    def test_stale_socket_replays_once(self):
        server = RudeServer()
        client = ServiceClient(server.url, timeout=10.0)
        try:
            assert client.request("POST", "/query", BODY,
                                  idempotent=True)["count"] == 1
            assert client.connections_opened == 1
            # The server hung up after answering; the pooled socket
            # is stale. The next request must succeed by replaying
            # once on a fresh connection — invisible to the caller.
            reply = client.request("POST", "/query", BODY,
                                   idempotent=True)
            assert reply["count"] == 1
            assert client.connections_opened == 2
            assert server.served == 2
        finally:
            client.close()
            server.close()


class TestAsyncShardClientKeepAlive:
    def test_burst_reuses_one_stream(self):
        with _service() as service:
            async def drive():
                client = AsyncShardClient(service.url, timeout=30.0)
                try:
                    for _ in range(12):
                        reply = await client.request(
                            "POST", "/query", BODY)
                        assert reply["count"] == 1
                    return client.connections_opened
                finally:
                    await client.aclose()
            assert asyncio.run(drive()) == 1

    def test_stale_stream_replays_once(self):
        server = RudeServer()

        async def scenario():
            client = AsyncShardClient(server.url, timeout=10.0)
            try:
                first = await client.request("POST", "/query", BODY,
                                             idempotent=True)
                assert first["count"] == 1
                assert client.connections_opened == 1
                reply = await client.request("POST", "/query", BODY,
                                             idempotent=True)
                assert reply["count"] == 1
                assert client.connections_opened == 2
            finally:
                await client.aclose()

        try:
            asyncio.run(scenario())
            assert server.served == 2
        finally:
            server.close()
