"""Smoke-run every shipped example as a subprocess.

Examples are user-facing documentation; a broken example is a broken
release. Each must exit 0 and print its expected landmark output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Table I" in out
        assert "cost=7" in out
        assert "5 communities" in out

    def test_custom_database(self):
        out = run_example("custom_database.py")
        assert "Referential integrity works" in out
        assert "parser" in out

    def test_advanced_features(self):
        out = run_example("advanced_features.py")
        assert "tree answers: 5" in out
        assert "round-tripped graph" in out
        assert "after growth" in out

    def test_dblp_example(self):
        out = run_example("dblp_coauthor_communities.py")
        assert "Projected graph" in out
        assert "COMM-all found" in out

    def test_imdb_example(self):
        out = run_example("imdb_interactive_topk.py")
        assert "no recomputation" in out
        assert "full re-run" in out
