"""The asyncio front end against the threaded one, over real sockets.

Acceptance coverage for the event-loop router:

* **byte identity** — the async router's ``/query`` and ``/batch``
  responses equal the threaded router's, on fig4 and on seeded
  property-test graphs (both fronts share :class:`RouterCore`, so any
  divergence is a transport bug);
* **replica failover** — a killed primary with a live sibling still
  yields the exact, non-partial answer, increments
  ``repro_router_failover_total`` once, and the promoted sibling
  stays sticky;
* **concurrent reload** — queries in flight while ``/admin/reload``
  rolls the fleet complete on the origin generation, on both front
  ends, including a reload that fails and rolls back mid-query;
* **cross-box transfer reload** — ``{"transfer": true}`` pushes shard
  snapshots over the wire and survives a mid-transfer checksum
  mismatch with a fleet-wide rollback.
"""

import threading
import time

import pytest

from repro import faults
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.engine.engine import QueryEngine
from repro.exceptions import ServiceError
from repro.graph.generators import random_database_graph
from repro.service import BadRequest, CommunityService, ServiceClient
from repro.shard import RouterService, partition_snapshot
from repro.shard.aio import AsyncRouterService
from repro.snapshot import read_manifest
from repro.snapshot.store import SnapshotStore
from repro.text.inverted_index import CommunityIndex


def _norm(response):
    return sorted((tuple(c["core"]), round(c["cost"], 9))
                  for c in response["communities"])


def _clean(response):
    """A response with its volatile fields dropped: timing, and the
    cache provenance markers (``cached``/``shards_cached``), which
    legitimately depend on what ran before — the *answers* must not."""
    out = dict(response)
    out.pop("elapsed_seconds", None)
    out.pop("cached", None)
    out.pop("shards_cached", None)
    if "results" in out:
        out["results"] = [_clean(r) for r in out["results"]]
    return out


def _partition(tmp, dbg, radius, parts_name, shards=2):
    """Publish ``dbg`` at ``radius`` and partition the latest."""
    SnapshotStore(tmp / "store").publish(
        dbg, CommunityIndex.build(dbg, radius),
        provenance={"index_radius": radius})
    manifest, _ = partition_snapshot(tmp / "store", tmp / parts_name,
                                     shards)
    return manifest


def _start_backends(manifest, parts_root, replicas=1, stores=None):
    """One :class:`CommunityService` per shard replica.

    ``stores`` maps ``(shard_id, replica)`` to each box's snapshot
    source; ``None`` defaults every replica to its shard's partition
    store (shared-filesystem layout).
    """
    services, urls = [], []
    for entry in manifest.shards:
        snapshot_dir = parts_root / entry.store / entry.snapshot_id
        group = []
        for index in range(replicas):
            if stores is None:
                source = parts_root / entry.store
            else:
                source = stores[(entry.shard_id, index)]
            engine = QueryEngine.from_snapshot(snapshot_dir)
            group.append(CommunityService(
                engine, port=0, snapshot_source=source).start())
        services.append(group)
        urls.append(",".join(s.url for s in group))
    return services, urls


def _stop(*closables):
    for closable in closables:
        closable.shutdown()


FIG4_BODIES = (
    {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 1},
    {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 3},
    {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "k": 50},
    {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "mode": "all"},
    {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX, "mode": "all",
     "labels": True},
)


@pytest.fixture(scope="module")
def twin_fleet(tmp_path_factory):
    """Both front ends over the SAME fig4 backends."""
    tmp = tmp_path_factory.mktemp("twin")
    manifest = _partition(tmp, figure4_graph(), 10.0, "parts")
    shards, urls = _start_backends(manifest, tmp / "parts")
    threaded = RouterService(manifest, urls,
                             root=tmp / "parts").start()
    via_async = AsyncRouterService(manifest, urls,
                                   root=tmp / "parts").start()
    yield threaded, via_async
    _stop(threaded, via_async, *[s for g in shards for s in g])


class TestByteIdentity:
    def test_query_responses_identical(self, twin_fleet):
        threaded, via_async = twin_fleet
        a = ServiceClient(threaded.url, timeout=30.0)
        b = ServiceClient(via_async.url, timeout=30.0)
        for body in FIG4_BODIES:
            got_a = _clean(a.request("POST", "/query", body))
            got_b = _clean(b.request("POST", "/query", body))
            assert got_a == got_b
            assert got_b["partial"] is False
            assert got_b["shards_answered"] == 2

    def test_batch_responses_identical(self, twin_fleet):
        threaded, via_async = twin_fleet
        body = {"queries": [dict(q) for q in FIG4_BODIES]}
        got_a = ServiceClient(threaded.url, timeout=30.0).request(
            "POST", "/batch", body)
        got_b = ServiceClient(via_async.url, timeout=30.0).request(
            "POST", "/batch", body)
        assert _clean(got_a) == _clean(got_b)
        assert got_b["queries"] == len(FIG4_BODIES)

    def test_async_health_and_metrics(self, twin_fleet):
        _, via_async = twin_fleet
        client = ServiceClient(via_async.url, timeout=30.0)
        health = client.request("GET", "/healthz")
        assert health["status"] == "ok"
        assert all(len(row["replicas"]) == 1
                   for row in health["shards"])
        metrics = client.metrics()
        assert "repro_router_failover_total 0" in metrics
        assert "repro_router_replicas 2" in metrics

    def test_unknown_keyword_is_identical_400(self, twin_fleet):
        threaded, via_async = twin_fleet
        body = {"keywords": ["nosuchkeyword"], "rmax": FIG4_RMAX}
        errors = []
        for router in (threaded, via_async):
            with pytest.raises(BadRequest) as excinfo:
                ServiceClient(router.url, timeout=30.0).request(
                    "POST", "/query", body)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


class TestPropertyGraphIdentity:
    """The acceptance bar: identity holds beyond the paper example."""

    @pytest.mark.parametrize("seed,shards", [(7, 2), (23, 3)])
    def test_random_graph_responses_identical(self, tmp_path, seed,
                                              shards):
        dbg = random_database_graph(14, 0.25, ["a", "b", "c"],
                                    seed=seed, bidirected=False)
        manifest = _partition(tmp_path, dbg, 4.0, "parts",
                              shards=shards)
        backends, urls = _start_backends(manifest, tmp_path / "parts")
        threaded = RouterService(manifest, urls,
                                 root=tmp_path / "parts").start()
        via_async = AsyncRouterService(manifest, urls,
                                       root=tmp_path / "parts").start()
        try:
            a = ServiceClient(threaded.url, timeout=30.0)
            b = ServiceClient(via_async.url, timeout=30.0)
            for body in (
                    {"keywords": ["a"], "rmax": 4.0, "k": 2},
                    {"keywords": ["a", "b"], "rmax": 4.0, "k": 5},
                    {"keywords": ["a", "b"], "rmax": 2.0,
                     "mode": "all"},
                    {"keywords": ["b", "c"], "rmax": 4.0,
                     "mode": "all"}):
                try:
                    got_a = _clean(a.request("POST", "/query", body))
                except ServiceError as error:
                    with pytest.raises(type(error)):
                        b.request("POST", "/query", body)
                    continue
                got_b = _clean(b.request("POST", "/query", body))
                assert got_a == got_b
        finally:
            _stop(threaded, via_async,
                  *[s for g in backends for s in g])


class TestReplicaFailover:
    def test_killed_primary_fails_over_exactly_once(self, tmp_path):
        manifest = _partition(tmp_path, figure4_graph(), 10.0,
                              "parts")
        backends, urls = _start_backends(manifest, tmp_path / "parts",
                                         replicas=2)
        router = AsyncRouterService(
            manifest, urls, root=tmp_path / "parts",
            shard_timeout=5.0, shard_retries=0).start()
        try:
            client = ServiceClient(router.url, timeout=30.0)
            body = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
                    "mode": "all"}
            before = _clean(client.request("POST", "/query", body))
            assert before["partial"] is False

            backends[0][0].shutdown()      # shard 0's primary dies

            after = _clean(client.request("POST", "/query", body))
            assert after == before         # exact, not partial
            metrics = client.metrics()
            assert "repro_router_failover_total 1" in metrics

            # Sticky promotion: the next call starts on the sibling,
            # no second failover.
            again = _clean(client.request("POST", "/query", body))
            assert again == before
            assert "repro_router_failover_total 1" \
                in client.metrics()

            # The fleet still rolls up ok: surviving on a sibling is
            # the designed posture, not an outage.
            health = client.request("GET", "/healthz")
            assert health["status"] == "ok"
        finally:
            _stop(router, *[s for g in backends for s in g])


@pytest.fixture(params=["threaded", "async"])
def reload_fleet_env(request, tmp_path):
    """A two-generation fleet fronted by one router flavor.

    Generation 1 (index radius 10) is serving; generation 2 (radius
    4) is partitioned and ready to roll out from ``parts2``.
    """
    dbg = figure4_graph()
    manifest1 = _partition(tmp_path, dbg, 10.0, "parts1")
    manifest2 = _partition(tmp_path, dbg, 4.0, "parts2")
    assert manifest2.generation != manifest1.generation
    backends, urls = _start_backends(manifest1, tmp_path / "parts1")
    front = RouterService if request.param == "threaded" \
        else AsyncRouterService
    router = front(manifest1, urls, root=tmp_path / "parts1").start()
    reference = CommunityService(
        QueryEngine.from_snapshot(
            SnapshotStore(tmp_path / "store").resolve()),
        port=0).start()        # the store's latest = generation 2
    yield router, manifest2, tmp_path / "parts2", reference
    faults.clear()
    _stop(router, reference, *[s for g in backends for s in g])


QUERY_ALL = {"keywords": list(FIG4_QUERY), "rmax": FIG4_RMAX,
             "mode": "all"}

#: Generation 2 is indexed at radius 4, so post-roll-out queries must
#: stay within it; the origin generation answers this too, but with a
#: different (radius-10-index) artifact behind it.
QUERY_NEW = {"keywords": list(FIG4_QUERY), "rmax": 4.0,
             "mode": "all"}


class TestConcurrentReload:
    def test_inflight_queries_complete_on_origin_generation(
            self, reload_fleet_env):
        router, manifest2, parts2, reference = reload_fleet_env
        client = ServiceClient(router.url, timeout=30.0)
        before = _clean(client.request("POST", "/query", QUERY_ALL))

        # Every backend reload stalls 1s, holding the fleet mid-roll
        # long enough to query through it deterministically.
        faults.activate("service.reload", "always:sleep(1.0)")
        outcome = {}
        try:
            def roll():
                outcome.update(client.request(
                    "POST", "/admin/reload", {"path": str(parts2)}))
            roller = threading.Thread(target=roll)
            roller.start()
            time.sleep(0.25)
            mid = _clean(ServiceClient(router.url, timeout=30.0)
                         .request("POST", "/query", QUERY_ALL))
            roller.join(timeout=30.0)
            assert not roller.is_alive()
        finally:
            faults.clear()
        # The in-flight query answered on the origin generation,
        # exactly and non-partially.
        assert mid == before
        assert mid["partial"] is False
        assert outcome["reloaded"] is True
        assert outcome["generation"] == manifest2.generation

        # The rolled-out fleet answers the new generation exactly
        # (the origin rmax now exceeds the new index radius — the
        # mid-roll answer above could only have come from gen 1).
        after = client.request("POST", "/query", QUERY_NEW)
        want = ServiceClient(reference.url, timeout=30.0).request(
            "POST", "/query", QUERY_NEW)
        assert _norm(after) == _norm(want)
        health = client.request("GET", "/healthz")
        assert health["generation"] == manifest2.generation
        assert health["status"] == "ok"

    def test_failed_reload_rolls_back_around_inflight_query(
            self, reload_fleet_env):
        router, manifest2, parts2, _ = reload_fleet_env
        client = ServiceClient(router.url, timeout=30.0)
        before = _clean(client.request("POST", "/query", QUERY_ALL))
        old_generation = client.request("GET",
                                        "/healthz")["generation"]

        # The first backend's reload dies before anything swaps.
        faults.activate("service.reload", "nth(1):raise")
        inflight = {}
        try:
            def ask():
                inflight.update(ServiceClient(
                    router.url, timeout=30.0).request(
                        "POST", "/query", QUERY_ALL))
            asker = threading.Thread(target=ask)
            asker.start()
            with pytest.raises(ServiceError, match="rolled back"):
                client.request("POST", "/admin/reload",
                               {"path": str(parts2)})
            asker.join(timeout=30.0)
            assert not asker.is_alive()
        finally:
            faults.clear()
        # The concurrent query survived the failed roll-out with the
        # exact origin answer.
        assert _clean(inflight) == before
        assert inflight["partial"] is False

        # Nothing moved: same generation, same answers, and the
        # rollback is visible in the metrics.
        health = client.request("GET", "/healthz")
        assert health["generation"] == old_generation
        assert health["status"] == "ok"
        assert _clean(client.request("POST", "/query", QUERY_ALL)) \
            == before
        assert "repro_router_reload_rollbacks_total 1" \
            in client.metrics()

        # The fault was once-only: the retry rolls the fleet forward.
        retried = client.request("POST", "/admin/reload",
                                 {"path": str(parts2)})
        assert retried["reloaded"] is True
        assert retried["generation"] == manifest2.generation


@pytest.fixture()
def crossbox_fleet(tmp_path):
    """Backends whose only snapshot source is their OWN empty store —
    the no-shared-filesystem deployment."""
    dbg = figure4_graph()
    manifest1 = _partition(tmp_path, dbg, 10.0, "parts1")
    manifest2 = _partition(tmp_path, dbg, 4.0, "parts2")
    stores = {(entry.shard_id, 0): tmp_path / f"box-{entry.shard_id}"
              for entry in manifest1.shards}
    backends, urls = _start_backends(manifest1, tmp_path / "parts1",
                                     stores=stores)
    router = AsyncRouterService(manifest1, urls,
                                root=tmp_path / "parts1").start()
    yield router, manifest2, tmp_path / "parts2"
    faults.clear()
    _stop(router, *[s for g in backends for s in g])


class TestCrossBoxTransferReload:
    def test_transfer_reload_needs_no_shared_filesystem(
            self, crossbox_fleet):
        router, manifest2, parts2 = crossbox_fleet
        client = ServiceClient(router.url, timeout=30.0)
        outcome = client.request(
            "POST", "/admin/reload",
            {"path": str(parts2), "transfer": True})
        assert outcome["reloaded"] is True
        assert outcome["transfer"] is True
        assert outcome["generation"] == manifest2.generation
        # Every backend now serves its pushed shard snapshot.
        health = client.request("GET", "/healthz")
        assert health["status"] == "ok"
        for row, entry in zip(health["shards"], manifest2.shards):
            assert row["snapshot"] == entry.snapshot_id
        result = client.request("POST", "/query", QUERY_NEW)
        assert result["partial"] is False and result["count"] >= 1

    def test_corrupted_transfer_rolls_the_fleet_back(
            self, crossbox_fleet):
        router, manifest2, parts2 = crossbox_fleet
        client = ServiceClient(router.url, timeout=30.0)
        before = _clean(client.request("POST", "/query", QUERY_ALL))
        old_generation = client.request("GET",
                                        "/healthz")["generation"]

        # Each shard pushes each section once, shard 0 first — the
        # second evaluation of this per-section failpoint corrupts
        # shard 1's copy in flight, after shard 0 already switched.
        entry = manifest2.shards[0]
        shard_manifest = read_manifest(
            parts2 / entry.store / entry.snapshot_id)
        section = sorted(shard_manifest["sections"])[0]
        faults.activate(f"snapshot.transfer.{section}",
                        "nth(2):corrupt")
        try:
            with pytest.raises(ServiceError, match="rolled back"):
                client.request(
                    "POST", "/admin/reload",
                    {"path": str(parts2), "transfer": True})
        finally:
            faults.clear()

        # Shard 0 was rolled back; the fleet still serves the origin
        # generation exactly.
        health = client.request("GET", "/healthz")
        assert health["generation"] == old_generation
        assert health["status"] == "ok"
        assert _clean(client.request("POST", "/query", QUERY_ALL)) \
            == before
        assert "repro_router_reload_rollbacks_total 1" \
            in client.metrics()

        # With the wire healthy again the same roll-out succeeds.
        retried = client.request(
            "POST", "/admin/reload",
            {"path": str(parts2), "transfer": True})
        assert retried["reloaded"] is True
        assert retried["generation"] == manifest2.generation
