"""SIGTERM drain over a real process boundary (satellite).

A ``python -m repro serve --snapshot --workers 2`` process is given a
deterministically slow first query (``worker.exec=nth(1):sleep`` via
``REPRO_FAILPOINTS``), SIGTERMed mid-flight, and must:

* finish the in-flight request normally when it fits the drain budget
  (or fail it with a 503-family/connection error when it does not);
* exit cleanly either way;
* leave **zero** orphaned worker processes behind.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.datasets.paper_example import FIG4_QUERY, FIG4_RMAX
from repro.service import ServiceClient, ServiceError

REPO_ROOT = Path(__file__).resolve().parents[2]


def _pid_gone(pid):
    """Whether ``pid`` no longer exists (or is a reaped zombie)."""
    try:
        os.kill(pid, 0)
    except OSError:
        return True
    # Still signalable: either alive or an unreaped zombie. A zombie
    # is not an orphan doing work, so check the state when /proc is
    # around (Linux); otherwise report it as live.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split()[2] == "Z"
    except OSError:
        return False


def _worker_pids(metrics_text):
    """Worker pids scraped from ``repro_worker_info`` rows."""
    return [int(pid) for pid in
            re.findall(r'repro_worker_info\{[^}]*pid="(\d+)"',
                       metrics_text)]


def _serve(store_root, port_file, extra_args, failpoints):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_FAILPOINTS"] = failpoints
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--snapshot", str(store_root), "--port", "0",
         "--port-file", str(port_file), "--workers", "2",
         *extra_args],
        env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, cwd=str(REPO_ROOT))


def _client_for(port_file, timeout=30.0):
    deadline = time.time() + 30
    while not port_file.exists() and time.time() < deadline:
        time.sleep(0.1)
    assert port_file.exists(), "server never bound"
    host, port = port_file.read_text().split()
    return ServiceClient(f"http://{host}:{port}", timeout=timeout)


def _query_in_background(client, outcome):
    """Fire one slow query; stash ('ok', response) or ('err', exc)."""
    def run():
        try:
            outcome.append(
                ("ok", client.query(list(FIG4_QUERY), FIG4_RMAX,
                                    k=1)))
        except Exception as error:  # noqa: BLE001 — recorded for
            # the main thread to assert on.
            outcome.append(("err", error))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


@pytest.fixture()
def store_root(tmp_path):
    root = tmp_path / "store"
    assert main(["snapshot", "build", "--dataset", "fig4",
                 "--store", str(root),
                 "--radius", str(FIG4_RMAX)]) == 0
    return root


class TestSigtermDrain:
    def test_in_flight_request_survives_sigterm(self, store_root,
                                                tmp_path):
        """SIGTERM lands while a 2s query runs; the 10s drain budget
        covers it, so the client still gets its 200."""
        port_file = tmp_path / "port"
        proc = _serve(store_root, port_file,
                      ["--drain-seconds", "10"],
                      "worker.exec=nth(1):sleep(2)")
        try:
            client = _client_for(port_file)
            assert client.health()["status"] == "ok"
            pids = _worker_pids(client.metrics())
            assert len(pids) == 2

            outcome = []
            thread = _query_in_background(client, outcome)
            time.sleep(0.6)          # the query is inside its 2s sleep
            proc.send_signal(signal.SIGTERM)

            thread.join(timeout=30.0)
            assert outcome, "query thread never finished"
            kind, value = outcome[0]
            assert kind == "ok", f"drained query failed: {value!r}"
            assert value["count"] == 1

            assert proc.wait(timeout=30) == 0
            for pid in pids:
                assert _pid_gone(pid), f"worker {pid} orphaned"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_drain_deadline_fails_request_but_kills_workers(
            self, store_root, tmp_path):
        """The in-flight query (5s) cannot fit the 0.5s drain budget:
        the request fails with a transient error (or a torn
        connection), but the process still exits and no worker
        survives it."""
        port_file = tmp_path / "port"
        proc = _serve(store_root, port_file,
                      ["--drain-seconds", "0.5"],
                      "worker.exec=nth(1):sleep(30)")
        try:
            client = _client_for(port_file, timeout=30.0)
            pids = _worker_pids(client.metrics())
            assert len(pids) == 2

            outcome = []
            thread = _query_in_background(client, outcome)
            time.sleep(0.6)
            proc.send_signal(signal.SIGTERM)

            thread.join(timeout=30.0)
            assert outcome, "query thread never finished"
            kind, value = outcome[0]
            # Past the drain deadline the request must NOT succeed;
            # it surfaces as a 503-family error or a torn connection.
            assert kind == "err", f"expected failure, got {value!r}"
            assert isinstance(value, ServiceError)

            assert proc.wait(timeout=30) == 0
            for pid in pids:
                assert _pid_gone(pid), f"worker {pid} orphaned"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
