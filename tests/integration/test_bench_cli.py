"""Integration tests for the figure generators and the CLI (tiny
scale: these verify the regeneration machinery, not the numbers)."""

import pytest

from repro.bench.__main__ import main
from repro.bench.figures import (
    FIGURES,
    figure9,
    figure10,
    figure11,
    figure12,
    index_stats,
    table1_ranking,
)


class TestTable1Report:
    def test_reproduced_exactly(self):
        report = table1_ranking()
        assert "Table I reproduced exactly." in report.text
        assert "MISMATCH" not in report.text


@pytest.mark.slow
class TestFigureReports:
    def test_figure9_tiny(self):
        report = figure9(scale="tiny", max_communities=10,
                         measure_memory=False)
        assert "Fig. 9(a)" in report.text
        assert set(report.panels) == {"a", "c", "e"}
        for results in report.panels.values():
            assert set(results) == {"pd", "bu", "td"}
            assert all(len(runs) == 5 for runs in results.values())

    def test_figure10_tiny(self):
        report = figure10("imdb", scale="tiny")
        assert set(report.panels) == {"a", "b", "c", "d"}
        for runs in report.panels["d"].values():
            assert [r.k for r in runs] == [50, 100, 150, 200, 250]

    def test_figure11_tiny(self):
        report = figure11(scale="tiny", max_communities=10,
                          measure_memory=True)
        assert "DBLP" in report.text
        memory = report.panels["a"]["pd"][0].peak_kb
        assert memory is not None and memory > 0

    def test_figure12_tiny(self):
        report = figure12(scale="tiny", extra_k=5)
        assert set(report.panels) == {"a", "b"}

    def test_index_stats_tiny(self):
        report = index_stats(scale="tiny")
        assert "DBLP" in report.text and "IMDB" in report.text
        assert "projected-graph fraction" in report.text


class TestCLI:
    def test_figure_registry_covers_all_exhibits(self):
        assert set(FIGURES) == {
            "table1", "2", "9", "10", "10-dblp", "11", "12", "index",
            "datasets", "scaling", "delay"}

    @pytest.mark.slow
    def test_dataset_stats_tiny(self):
        from repro.bench.figures import dataset_stats
        report = dataset_stats(scale="tiny")
        assert "planted KWF check" in report.text
        assert "Write per Paper" in report.text

    def test_figure2_trees_report(self, capsys):
        from repro.bench.figures import figure2_trees
        report = figure2_trees()
        assert "5 trees" in report.text
        assert "contains 4 of the 5 trees" in report.text

    def test_cli_table1(self, capsys):
        assert main(["--figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I reproduced exactly." in out
        assert "regenerated in" in out

    def test_cli_requires_figure(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_cli_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "nope"])
