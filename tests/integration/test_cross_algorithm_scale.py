"""Cross-algorithm agreement at a scale hypothesis can't reach.

A few hundred nodes with power-law degrees and BANKS weights — big
enough for nontrivial neighborhood structure, small enough for the
naive enumerator to stay the ground truth.
"""

import math

import pytest

from repro.core import all_communities, naive_all, top_k
from repro.core.baselines import bu_all, td_all
from repro.core.community import community_sort_key
from repro.core.search import CommunitySearch
from repro.graph.database_graph import DatabaseGraph
from repro.graph.generators import power_law_digraph


@pytest.fixture(scope="module")
def scaled_graph():
    """~250-node power-law graph with BANKS weights and 3 keywords."""
    import random
    rng = random.Random(99)
    builder = power_law_digraph(250, m_per_node=2, seed=7)
    compiled = builder.compile()
    # re-weight with the BANKS formula
    edges = [
        (u, v, math.log2(1 + compiled.in_degree(v)))
        for u, v, _ in compiled.edges()
    ]
    from repro.graph.csr import CompiledGraph
    graph = CompiledGraph.from_edges(compiled.n, edges)
    keywords = [set() for _ in range(graph.n)]
    for kw in ("a", "b", "c"):
        for node in rng.sample(range(graph.n), 12):
            keywords[node].add(kw)
    return DatabaseGraph(graph, keywords)


QUERY = ["a", "b", "c"]
RMAX = 7.0


class TestAgreementAtScale:
    def test_pd_bu_td_naive_agree(self, scaled_graph):
        reference = sorted(
            (c.core, round(c.cost, 9))
            for c in naive_all(scaled_graph, QUERY, RMAX))
        assert reference, "fixture should produce communities"
        for runner in (all_communities, bu_all, td_all):
            got = sorted(
                (c.core, round(c.cost, 9))
                for c in runner(scaled_graph, QUERY, RMAX))
            assert got == reference

    def test_pdk_exact_ranking(self, scaled_graph):
        reference = naive_all(scaled_graph, QUERY, RMAX)
        got = top_k(scaled_graph, QUERY, len(reference) + 5, RMAX)
        assert [c.cost for c in got] == [c.cost for c in reference]

    def test_projection_equivalence_at_scale(self, scaled_graph):
        search = CommunitySearch(scaled_graph)
        search.build_index(radius=RMAX)
        direct = sorted(
            search.all_communities(QUERY, RMAX, use_projection=False),
            key=community_sort_key)
        projected = sorted(
            search.all_communities(QUERY, RMAX, use_projection=True),
            key=community_sort_key)
        assert [(c.core, c.cost, c.nodes, c.edges) for c in direct] \
            == [(c.core, c.cost, c.nodes, c.edges) for c in projected]
        projection = search.project(QUERY, RMAX)
        assert projection.n < scaled_graph.n

    def test_max_aggregate_agreement_at_scale(self, scaled_graph):
        reference = sorted(
            (c.core, round(c.cost, 9))
            for c in naive_all(scaled_graph, QUERY, RMAX,
                               aggregate="max"))
        got = sorted(
            (c.core, round(c.cost, 9))
            for c in all_communities(scaled_graph, QUERY, RMAX,
                                     aggregate="max"))
        assert got == reference
