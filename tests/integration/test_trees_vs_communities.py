"""Fig. 2 reproduction and the paper's §I claim: one community
subsumes the tree answers."""

import pytest

from repro.core import top_k
from repro.core.trees import enumerate_trees, top_k_trees
from repro.datasets.paper_example import (
    FIG1_QUERY,
    FIG1_RMAX,
    figure1_graph,
)
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def fig1_module():
    return figure1_graph()


class TestFig2Trees:
    def test_exactly_five_trees(self, fig1_module):
        trees = enumerate_trees(fig1_module, list(FIG1_QUERY),
                                max_weight=8.0)
        assert len(trees) == 5

    def test_t1_is_the_best_tree(self, fig1_module):
        dbg = fig1_module
        best = top_k_trees(dbg, list(FIG1_QUERY), 1, 8.0)[0]
        # T1: paper1 wrote by John Smith and Kate Green
        assert dbg.label_of(best.root) == "paper1"
        assert best.weight == 3.0
        labels = {dbg.label_of(u) for u in best.nodes}
        assert labels == {"paper1", "John Smith", "Kate Green"}

    def test_four_trees_connect_john_and_kate(self, fig1_module):
        dbg = fig1_module
        trees = enumerate_trees(dbg, list(FIG1_QUERY), max_weight=8.0)
        john_kate = [
            t for t in trees
            if {"John Smith", "Kate Green"}
            <= {dbg.label_of(u) for u in t.nodes}]
        assert len(john_kate) == 4  # the paper's T1..T4

    def test_fifth_tree_involves_jim(self, fig1_module):
        dbg = fig1_module
        trees = enumerate_trees(dbg, list(FIG1_QUERY), max_weight=8.0)
        jim = [t for t in trees
               if "Jim Smith" in {dbg.label_of(u) for u in t.nodes}]
        assert len(jim) == 1

    def test_trees_are_trees(self, fig1_module):
        for tree in enumerate_trees(fig1_module, list(FIG1_QUERY),
                                    max_weight=8.0):
            assert len(tree.edges) == len(tree.nodes) - 1
            targets = [v for _, v, _ in tree.edges]
            assert len(targets) == len(set(targets))  # one parent each
            assert tree.root not in targets

    def test_every_leaf_is_a_keyword_node(self, fig1_module):
        dbg = fig1_module
        for tree in enumerate_trees(dbg, list(FIG1_QUERY),
                                    max_weight=8.0):
            sources = {u for u, _, _ in tree.edges}
            for node in tree.nodes:
                if node not in sources:  # leaf
                    kws = dbg.keywords_of(node)
                    assert kws & {"kate", "smith"}


class TestSubsumption:
    def test_community_r1_contains_trees_t1_to_t4(self, fig1_module):
        """Paper §I: 'The community R1 includes all the information
        represented by the 4 trees T_i, 1 <= i <= 4'."""
        dbg = fig1_module
        community = top_k(dbg, list(FIG1_QUERY), 1, FIG1_RMAX)[0]
        community_nodes = set(community.nodes)
        community_edges = {(u, v) for u, v, _ in community.edges}
        trees = enumerate_trees(dbg, list(FIG1_QUERY), max_weight=8.0)
        john_kate_trees = [
            t for t in trees
            if {"John Smith", "Kate Green"}
            <= {dbg.label_of(u) for u in t.nodes}]
        for tree in john_kate_trees:
            assert set(tree.nodes) <= community_nodes
            assert {(u, v) for u, v, _ in tree.edges} \
                <= community_edges

    def test_tree_count_exceeds_community_count(self, fig1_module):
        # the paper's usability point: many trees vs few communities
        dbg = fig1_module
        from repro.core import all_communities
        trees = enumerate_trees(dbg, list(FIG1_QUERY), max_weight=8.0)
        communities = all_communities(dbg, list(FIG1_QUERY), FIG1_RMAX)
        assert len(trees) > len(communities)


class TestValidation:
    def test_negative_weight_rejected(self, fig1_module):
        with pytest.raises(QueryError):
            enumerate_trees(fig1_module, ["kate"], max_weight=-1.0)

    def test_k_validation(self, fig1_module):
        with pytest.raises(QueryError):
            top_k_trees(fig1_module, ["kate"], 0, 5.0)

    def test_path_guard(self, fig1_module):
        with pytest.raises(QueryError):
            enumerate_trees(fig1_module, list(FIG1_QUERY),
                            max_weight=8.0, max_paths=1)

    def test_single_keyword_single_node_tree(self, fig1_module):
        dbg = fig1_module
        trees = enumerate_trees(dbg, ["jim"], max_weight=5.0)
        singles = [t for t in trees if t.size == 1]
        assert singles and all(
            "jim" in dbg.keywords_of(t.root) for t in singles)
