"""Cross-box snapshot transfer over a live HTTP service.

The no-shared-filesystem deploy path, end to end: a snapshot
published on one "box" (a local store) is pushed over the wire into a
service whose own store never saw it, adopted by id with
``POST /admin/reload {"snapshot": ...}``, and then answers queries.
The pull direction (:func:`fetch_snapshot`) mirrors a served snapshot
into a fresh local store. A failpoint that corrupts bytes in flight
proves the checksum gate: the PUT answers 400, the push raises, and
the remote store is left byte-for-byte untouched.
"""

import pytest

from repro import faults
from repro.datasets.paper_example import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure4_graph,
)
from repro.engine import QueryEngine
from repro.service import BadRequest, CommunityService, ServiceClient
from repro.service.http import fetch_snapshot, push_snapshot
from repro.snapshot import SnapshotStore, load_snapshot
from repro.text.inverted_index import CommunityIndex


@pytest.fixture()
def source_snapshot(tmp_path):
    """A published fig4 snapshot on the 'build box'."""
    dbg = figure4_graph()
    index = CommunityIndex.build(dbg, FIG4_RMAX)
    return SnapshotStore(tmp_path / "build-box").publish(
        dbg, index, provenance={"dataset": "fig4"})


@pytest.fixture()
def serving(tmp_path, fig4):
    """A live service whose own (empty) store is its snapshot source."""
    engine = QueryEngine(fig4)
    engine.build_index(radius=FIG4_RMAX)
    store_root = tmp_path / "serve-box"
    with CommunityService(engine, port=0,
                          snapshot_source=store_root).start() \
            as service:
        with ServiceClient(service.url, timeout=30.0) as client:
            yield service, client, store_root


class TestPushReload:
    def test_push_then_reload_by_id(self, source_snapshot, serving):
        _, client, store_root = serving
        reply = push_snapshot(client, source_snapshot.path)
        assert reply["snapshot"] == source_snapshot.id
        # The bytes now live in the serving box's own store.
        local = SnapshotStore(store_root)
        assert local.latest_id() == source_snapshot.id
        load_snapshot(local.resolve(source_snapshot.id), verify=True)

        adopted = client.admin_reload(snapshot=source_snapshot.id)
        assert adopted["snapshot"] == source_snapshot.id
        assert adopted["generation"] == source_snapshot.id
        result = client.query(list(FIG4_QUERY), FIG4_RMAX, k=1)
        assert result["count"] == 1

    def test_repush_is_idempotent(self, source_snapshot, serving):
        _, client, _ = serving
        first = push_snapshot(client, source_snapshot.path)
        assert first["snapshot"] == source_snapshot.id
        again = push_snapshot(client, source_snapshot.path)
        assert again["complete"] is True
        assert again["sections_needed"] == []


class TestFetch:
    def test_fetch_mirrors_served_snapshot(self, source_snapshot,
                                           tmp_path, fig4):
        engine = QueryEngine.from_snapshot(source_snapshot.path)
        with CommunityService(
                engine, port=0,
                snapshot_source=source_snapshot.path.parent).start() \
                as service:
            with ServiceClient(service.url, timeout=30.0) as client:
                mirror = SnapshotStore(tmp_path / "mirror")
                local = fetch_snapshot(client, source_snapshot.id,
                                       mirror)
                assert local == mirror.root / source_snapshot.id
                loaded = load_snapshot(local, verify=True)
                assert loaded.id == source_snapshot.id


class TestCorruptInFlight:
    def test_checksum_gate_rejects_and_leaves_store_clean(
            self, source_snapshot, serving):
        _, client, store_root = serving
        faults.activate("snapshot.transfer", "once:corrupt")
        try:
            with pytest.raises(BadRequest,
                               match="corrupt|checksum|truncated"):
                push_snapshot(client, source_snapshot.path)
        finally:
            faults.clear()
        # Nothing became visible: no snapshot, no staging leftovers.
        store = SnapshotStore(store_root)
        assert [child for child in store.root.iterdir()] == []
        # The service is unharmed and a clean retry succeeds.
        reply = push_snapshot(client, source_snapshot.path)
        assert reply["snapshot"] == source_snapshot.id
