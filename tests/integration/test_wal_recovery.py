"""Crash recovery over a real process boundary (the tentpole proof).

A ``python -m repro serve --snapshot --wal`` process ingests deltas
over HTTP and is killed *instantly* (``os._exit`` via an armed WAL
failpoint — no cleanup, no flushing, the moral equivalent of
``kill -9``) mid-ingest. A fresh process pointed at the same store and
WAL must come back answering exactly like a twin engine that applied
the same acknowledged deltas and never crashed.

The two kill points pin down the durability contract precisely:

* killed at ``wal.append`` (before the frame is written): the failed
  delta was never acknowledged and never logged — the recovered state
  equals the acked-only twin;
* killed at ``wal.fsync`` (frame written + flushed, ack never sent):
  the delta survives in the page cache, so the recovered state equals
  a twin applying every WAL-retained delta, and the acknowledged
  prefix is always a subset of what the WAL retained.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.datasets.paper_example import FIG4_RMAX
from repro.engine import QueryEngine
from repro.service import CommunityService, ServiceClient
from repro.snapshot import SnapshotStore
from repro.wal import parse_delta, read_wal

REPO_ROOT = Path(__file__).resolve().parents[2]
QUERY = {"keywords": ["a", "b", "c"], "rmax": FIG4_RMAX}

#: Three deltas; ids are dense after fig4's 13 nodes, so node ids are
#: 13, 14, 15 as the graph grows one node per acknowledged delta.
DELTAS = [
    {"nodes": [{"keywords": ["a"], "label": "w1"}],
     "edges": [[13, 0, 1.0], [0, 13, 1.0]]},
    {"nodes": [{"keywords": ["b"], "label": "w2"}],
     "edges": [[14, 13, 1.0], [13, 14, 1.0]]},
    {"nodes": [{"keywords": ["c"], "label": "w3"}],
     "edges": [[15, 2, 0.5], [2, 15, 0.5]]},
]


@pytest.fixture()
def store(tmp_path):
    import sys as _sys
    _sys.path.insert(0, str(REPO_ROOT / "tests" / "chaos"))
    from chaos_helpers import publish_fig4
    root = tmp_path / "store"
    publish_fig4(root)
    return root


def _serve(store_root, wal_path, port_file, failpoints=""):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if failpoints:
        env["REPRO_FAILPOINTS"] = failpoints
    else:
        env.pop("REPRO_FAILPOINTS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--snapshot", str(store_root), "--port", "0",
         "--port-file", str(port_file),
         "--wal", str(wal_path), "--wal-fsync", "always"],
        env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, cwd=str(REPO_ROOT))


def _client_for(port_file):
    deadline = time.time() + 30
    while not port_file.exists() and time.time() < deadline:
        time.sleep(0.1)
    assert port_file.exists(), "server never bound"
    host, port = port_file.read_text().split()
    return ServiceClient(f"http://{host}:{port}", timeout=30.0)


def _ingest_until_crash(client, proc):
    """POST deltas until the server dies; return acked responses."""
    acked = []
    for payload in DELTAS:
        try:
            acked.append(client.request("POST", "/admin/delta",
                                        payload))
        except Exception:  # noqa: BLE001 — the crash we arranged
            break
    proc.wait(timeout=30)
    return acked


def _serve_processes(port_file):
    """Pids whose cmdline mentions ``port_file`` (victim + its
    orphaned pool workers — fork children share the parent argv)."""
    needle = str(port_file).encode()
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            cmdline = (Path("/proc") / entry /
                       "cmdline").read_bytes()
        except OSError:
            continue
        if needle in cmdline:
            pids.append(int(entry))
    return pids


def _assert_no_orphan_workers(port_file):
    """The hard-killed parent cannot reap its pool; the workers must
    notice the orphaning (queue poll timeout) and exit on their own."""
    deadline = time.time() + 30
    while _serve_processes(port_file) and time.time() < deadline:
        time.sleep(0.5)
    assert _serve_processes(port_file) == []


def _twin_answers(store_root, payloads):
    """``/query`` response of an uncrashed engine applying
    ``payloads`` live, via the same serializer the server uses."""
    snap = SnapshotStore(store_root).load("latest", verify=False)
    engine = QueryEngine.from_snapshot(snap.path)
    for payload in payloads:
        engine.apply_delta(parse_delta(payload,
                                       base_nodes=engine.dbg.n))
    with CommunityService(engine, port=0) as twin:
        status, _t, raw, _c = twin.handle(
            "POST", "/query", json.dumps(QUERY).encode())
    assert status == 200
    body = json.loads(raw)
    return body["count"], body["communities"]


def _recovered_answers(store_root, wal_path, tmp_path):
    """Restart against the same WAL; return (healthz, answers)."""
    port_file = tmp_path / "recovered.port"
    proc = _serve(store_root, wal_path, port_file)
    try:
        client = _client_for(port_file)
        health = client.request("GET", "/healthz")
        body = client.request("POST", "/query", QUERY)
        return health, (body["count"], body["communities"])
    finally:
        proc.terminate()
        proc.wait(timeout=30)


class TestKillDuringIngest:
    def test_kill_at_append_recovers_acked_only(self, store,
                                                tmp_path):
        wal_path = tmp_path / "deltas.wal"
        port_file = tmp_path / "victim.port"
        proc = _serve(store, wal_path, port_file,
                      failpoints="wal.append=nth(3):exit")
        acked = _ingest_until_crash(_client_for(port_file), proc)

        # delta 3 died before its frame was written: never acked,
        # never logged
        assert len(acked) == 2
        assert [r["lsn"] for r in acked] == [1, 2]
        retained = read_wal(wal_path)
        assert [r["lsn"] for r in retained] == [1, 2]

        health, answers = _recovered_answers(store, wal_path,
                                             tmp_path)
        assert health["deltas_applied"] == 2
        assert health["dirty"] is True
        assert health["wal"]["lsn"] == 2
        assert answers == _twin_answers(store, DELTAS[:2])

    def test_kill_at_fsync_replays_retained_superset(self, store,
                                                     tmp_path):
        wal_path = tmp_path / "deltas.wal"
        port_file = tmp_path / "victim.port"
        proc = _serve(store, wal_path, port_file,
                      failpoints="wal.fsync=nth(3):exit")
        acked = _ingest_until_crash(_client_for(port_file), proc)
        _assert_no_orphan_workers(port_file)

        # delta 3's frame was written and flushed before the kill:
        # it survives in the WAL even though the ack was never sent
        assert len(acked) == 2
        retained = read_wal(wal_path)
        assert [r["lsn"] for r in retained] == [1, 2, 3]
        acked_lsns = {r["lsn"] for r in acked}
        assert acked_lsns <= {r["lsn"] for r in retained}

        health, answers = _recovered_answers(store, wal_path,
                                             tmp_path)
        # recovery materializes every retained delta — the
        # acknowledged prefix plus the flushed-but-unacked tail
        assert health["deltas_applied"] == 3
        assert answers == _twin_answers(store, DELTAS)

    def test_compaction_after_recovery_preserves_answers(
            self, store, tmp_path, capsys):
        wal_path = tmp_path / "deltas.wal"
        port_file = tmp_path / "victim.port"
        proc = _serve(store, wal_path, port_file,
                      failpoints="wal.append=nth(3):exit")
        _ingest_until_crash(_client_for(port_file), proc)
        expected = _twin_answers(store, DELTAS[:2])

        # offline CLI compaction folds the recovered deltas
        assert main(["compact", "--wal", str(wal_path),
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "folded 2" in out
        assert not read_wal(wal_path) or all(
            r["type"] != "delta" for r in read_wal(wal_path))

        # a server on the compacted snapshot needs no replay and
        # answers identically
        health, answers = _recovered_answers(store, wal_path,
                                             tmp_path)
        assert health["deltas_applied"] == 0
        assert health["dirty"] is False
        assert answers == expected
