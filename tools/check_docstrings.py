"""Docstring coverage checker.

Walks ``src/repro`` and reports every public module, class, function,
and method without a docstring. Used by the test suite to enforce the
"documented public API" requirement; exits nonzero on violations when
run as a script.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _public(name: str) -> bool:
    return not name.startswith("_")


def _api_nodes(tree: ast.Module):
    """Module-level defs/classes and class-level methods — the public
    API surface. Functions nested inside functions are implementation
    detail and are skipped."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield node
            if isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        yield member


def missing_docstrings(root: Path = SRC) -> List[str]:
    """Return "path:line kind name" for undocumented public items."""
    problems: List[str] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text())
        rel = path.relative_to(root.parents[1])
        if ast.get_docstring(tree) is None:
            problems.append(f"{rel}:1 module {path.stem}")
        for node in _api_nodes(tree):
            if not _public(node.name):
                continue
            if ast.get_docstring(node) is None:
                kind = ("class" if isinstance(node, ast.ClassDef)
                        else "def")
                problems.append(
                    f"{rel}:{node.lineno} {kind} {node.name}")
    return problems


def main() -> int:
    problems = missing_docstrings()
    for problem in problems:
        print(problem)
    print(f"{len(problems)} undocumented public items")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
