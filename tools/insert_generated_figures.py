"""Insert the generated figure tables into EXPERIMENTS.md.

Replaces the ``<!-- GENERATED-FIGURES -->`` marker with the output of
:mod:`tools.make_experiments_md` so the measured tables live inline.
"""

from __future__ import annotations

import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from make_experiments_md import main as render  # noqa: E402

MARKER = "<!-- GENERATED-FIGURES -->"


def insert(experiments_path: str, json_path: str) -> None:
    """Render the tables from ``json_path`` into ``experiments_path``."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        render(json_path)
    tables = buffer.getvalue()
    path = Path(experiments_path)
    text = path.read_text()
    if MARKER not in text:
        raise SystemExit(f"no {MARKER} marker in {experiments_path}")
    block = ("## Measured figure tables (bench scale)\n\n"
             + tables.rstrip() + "\n")
    path.write_text(text.replace(MARKER, block))
    print(f"inserted {len(tables.splitlines())} generated lines")


if __name__ == "__main__":
    insert(sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md",
           sys.argv[2] if len(sys.argv) > 2 else "bench_results.json")
