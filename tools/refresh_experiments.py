"""Refresh the generated-figures section of EXPERIMENTS.md in place.

Cuts the previous "Measured figure tables" section (or the
``<!-- GENERATED-FIGURES -->`` marker) and re-inserts tables rendered
from a fresh ``bench_results.json``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from insert_generated_figures import MARKER, insert  # noqa: E402

SECTION_RE = re.compile(
    r"## Measured figure tables \(bench scale\)\n.*?(?=\n## )",
    re.S)


def refresh(experiments_path: str = "EXPERIMENTS.md",
            json_path: str = "bench_results.json") -> None:
    """Replace any previous generated section, then insert fresh."""
    path = Path(experiments_path)
    text = path.read_text()
    if MARKER not in text:
        text, count = SECTION_RE.subn(MARKER + "\n", text)
        if count != 1:
            raise SystemExit(
                "could not find the generated section to replace")
        path.write_text(text)
    insert(experiments_path, json_path)


if __name__ == "__main__":
    refresh(*sys.argv[1:3])
