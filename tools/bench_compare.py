#!/usr/bin/env python
"""Benchmark regression guard: diff fresh results against a baseline.

Compares two pytest-benchmark JSON files (``--benchmark-json`` output)
by benchmark name and fails when the median latency of any shared
benchmark regresses beyond a threshold (default 25 %). Use it to gate
changes against the committed ``bench_results.json``::

    PYTHONPATH=src python -m pytest benchmarks -q \
        --benchmark-json=fresh.json
    python tools/bench_compare.py fresh.json

Exit codes: 0 — no regression; 1 — at least one benchmark regressed;
2 — the files could not be compared (missing/empty/disjoint).
Benchmarks present in only one file are reported but never fail the
run (new benchmarks appear, retired ones disappear).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Default committed baseline, relative to the repository root.
DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / \
    "bench_results.json"

#: Default tolerated median-latency growth before failing (25 %).
DEFAULT_THRESHOLD = 0.25


def load_medians(path: Path) -> Dict[str, float]:
    """``{benchmark name: median seconds}`` from one results file."""
    with open(path) as handle:
        payload = json.load(handle)
    medians: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        median = bench.get("stats", {}).get("median")
        if median is not None:
            medians[bench["name"]] = float(median)
    return medians


def compare(baseline: Dict[str, float], fresh: Dict[str, float],
            threshold: float
            ) -> Tuple[List[Tuple[str, float, float, float]],
                       List[str], List[str]]:
    """Diff medians; returns (rows, only-in-baseline, only-in-fresh).

    Each row is ``(name, baseline_median, fresh_median, ratio)`` for a
    shared benchmark, sorted by descending ratio; ``ratio`` is
    fresh/baseline (1.0 = unchanged, above ``1 + threshold`` =
    regression).
    """
    shared = sorted(set(baseline) & set(fresh))
    rows = sorted(
        ((name, baseline[name], fresh[name],
          fresh[name] / baseline[name] if baseline[name] else
          float("inf"))
         for name in shared),
        key=lambda row: -row[3])
    missing = sorted(set(baseline) - set(fresh))
    new = sorted(set(fresh) - set(baseline))
    del threshold  # classification happens in main() for reporting
    return rows, missing, new


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Fail when fresh benchmark medians regress "
                    "beyond --threshold vs the committed baseline.")
    parser.add_argument("fresh", type=Path,
                        help="pytest-benchmark JSON from the current "
                             "tree")
    parser.add_argument("--baseline", type=Path,
                        default=DEFAULT_BASELINE,
                        help="baseline JSON (default: the committed "
                             "bench_results.json)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated median growth as a fraction "
                             "(default 0.25 = +25%%)")
    args = parser.parse_args(argv)

    for path in (args.baseline, args.fresh):
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
    baseline = load_medians(args.baseline)
    fresh = load_medians(args.fresh)
    if not baseline or not fresh:
        print("error: one of the files contains no benchmarks",
              file=sys.stderr)
        return 2

    rows, missing, new = compare(baseline, fresh, args.threshold)
    if not rows:
        print("error: the files share no benchmark names",
              file=sys.stderr)
        return 2

    limit = 1.0 + args.threshold
    regressions = [row for row in rows if row[3] > limit]
    print(f"{len(rows)} shared benchmarks; threshold "
          f"+{args.threshold:.0%} (ratio > {limit:.2f} fails)")
    print(f"{'benchmark':<56} {'base[s]':>10} {'fresh[s]':>10} "
          f"{'ratio':>7}")
    for name, base, now, ratio in rows:
        flag = " <-- REGRESSION" if ratio > limit else ""
        print(f"{name:<56} {base:>10.6f} {now:>10.6f} "
              f"{ratio:>6.2f}x{flag}")
    if missing:
        print(f"\n{len(missing)} benchmark(s) only in baseline: "
              + ", ".join(missing[:5])
              + ("..." if len(missing) > 5 else ""))
    if new:
        print(f"{len(new)} new benchmark(s): " + ", ".join(new[:5])
              + ("..." if len(new) > 5 else ""))

    if regressions:
        worst = regressions[0]
        print(f"\nFAIL: {len(regressions)} regression(s); worst "
              f"{worst[0]} at {worst[3]:.2f}x baseline",
              file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
