"""Generate EXPERIMENTS.md from a pytest-benchmark JSON dump.

Run after ``pytest benchmarks/ --benchmark-only
--benchmark-json=bench_results.json``::

    python tools/make_experiments_md.py bench_results.json > EXPERIMENTS.md

Each figure's panel tables are rebuilt from the per-cell
``extra_info`` the benchmarks record (average delay, peak memory,
community counts, censoring flags), and annotated with the paper's
expected qualitative shape so paper-vs-measured reads side by side.
"""

from __future__ import annotations

import json
import re
import sys
from collections import defaultdict
from typing import Dict, List


def load(path: str) -> List[dict]:
    with open(path) as handle:
        return json.load(handle)["benchmarks"]


def parse_params(name: str) -> Dict[str, str]:
    """``test_fig9ab_kwf_sweep[0.0003-pd]`` -> {x: 0.0003, alg: pd}."""
    match = re.search(r"\[(.+)\]", name)
    if not match:
        return {}
    parts = match.group(1).split("-")
    return {"x": parts[0], "alg": parts[-1],
            "mid": "-".join(parts[1:-1])}


def cell_text(entry: dict, metric: str) -> str:
    info = entry.get("extra_info", {})
    if metric == "seconds":
        value = entry["stats"]["mean"]
        text = f"{value:.2f}"
    elif metric in info and info[metric] is not None:
        value = info[metric]
        text = f"{value:.2f}" if isinstance(value, float) else str(value)
    else:
        return "-"
    if info.get("timed_out"):
        text += "!"
    elif info.get("capped"):
        text += "+"
    return text


def panel_table(rows: Dict[str, Dict[str, dict]], x_order: List[str],
                metric: str, unit: str) -> List[str]:
    algs = ("pd", "bu", "td")
    lines = [
        "| " + " | ".join(["x"] + [f"{a} [{unit}]" for a in algs])
        + " |",
        "|" + "---|" * (len(algs) + 1),
    ]
    for x in x_order:
        cells = [
            cell_text(rows[x][alg], metric) if alg in rows.get(x, {})
            else "-"
            for alg in algs]
        lines.append("| " + " | ".join([x] + cells) + " |")
    return lines


def group(benchmarks: List[dict], prefix: str
          ) -> (Dict[str, Dict[str, dict]], List[str]):
    rows: Dict[str, Dict[str, dict]] = defaultdict(dict)
    x_order: List[str] = []
    for entry in benchmarks:
        if not entry["name"].startswith(prefix):
            continue
        params = parse_params(entry["name"])
        x = params.get("x", "?")
        if x not in x_order:
            x_order.append(x)
        rows[x][params.get("alg", "?")] = entry
    return rows, x_order


PANEL_SPECS = [
    # (heading, test prefix, metric, unit, paper expectation)
    ("Fig. 9(a,b) — IMDB COMM-all vs KWF",
     "test_fig9ab_kwf_sweep", "avg_delay_ms", "ms/ans",
     "paper: delay and memory grow with KWF; PDall fastest and "
     "smallest"),
    ("Fig. 9(c,d) — IMDB COMM-all vs l",
     "test_fig9cd_l_sweep", "avg_delay_ms", "ms/ans",
     "paper: delay falls as l grows; BU/TD memory grows with the "
     "result count"),
    ("Fig. 9(e,f) — IMDB COMM-all vs Rmax",
     "test_fig9ef_rmax_sweep", "avg_delay_ms", "ms/ans",
     "paper: delay and memory grow with Rmax"),
    ("Fig. 10(a) — IMDB COMM-k vs KWF",
     "test_fig10a_kwf_sweep", "seconds", "s",
     "paper: total time grows with KWF; PDk fastest"),
    ("Fig. 10(b) — IMDB COMM-k vs l",
     "test_fig10b_l_sweep", "seconds", "s",
     "paper: BUk/TDk grow with l; PDk stays flat"),
    ("Fig. 10(c) — IMDB COMM-k vs Rmax",
     "test_fig10c_rmax_sweep", "seconds", "s",
     "paper: time grows with Rmax; PDk fastest"),
    ("Fig. 10(d) — IMDB COMM-k vs k",
     "test_fig10d_k_sweep", "seconds", "s",
     "paper: time grows with k; PDk fastest"),
    ("Fig. 11(a,b) — DBLP COMM-all vs KWF",
     "test_fig11ab_kwf_sweep", "avg_delay_ms", "ms/ans",
     "paper: PDall *slower* than BU/TD on DBLP (few duplicates, "
     "single-center results) but lowest memory"),
    ("Fig. 11(c,d) — DBLP COMM-all vs l",
     "test_fig11cd_l_sweep", "avg_delay_ms", "ms/ans",
     "paper: delay falls with l; PDall memory shrinks (smaller "
     "projections)"),
    ("Fig. 11(e,f) — DBLP COMM-all vs Rmax",
     "test_fig11ef_rmax_sweep", "avg_delay_ms", "ms/ans",
     "paper: delay and memory grow with Rmax"),
    ("Fig. 12(a) — DBLP interactive top-k (k, then +50)",
     "test_fig12a_dblp_interactive", "seconds", "s",
     "paper: PDk continues for free; BUk/TDk pay a full re-run"),
    ("Fig. 12(b) — IMDB interactive top-k (k, then +50)",
     "test_fig12b_imdb_interactive", "seconds", "s",
     "paper: PDk dramatically faster at every k"),
]

MEMORY_SPECS = [
    ("Fig. 9(b) memory — IMDB vs KWF", "test_fig9ab_kwf_sweep"),
    ("Fig. 9(d) memory — IMDB vs l", "test_fig9cd_l_sweep"),
    ("Fig. 9(f) memory — IMDB vs Rmax", "test_fig9ef_rmax_sweep"),
    ("Fig. 11(b) memory — DBLP vs KWF", "test_fig11ab_kwf_sweep"),
    ("Fig. 11(d) memory — DBLP vs l", "test_fig11cd_l_sweep"),
    ("Fig. 11(f) memory — DBLP vs Rmax", "test_fig11ef_rmax_sweep"),
]


def main(path: str) -> None:
    benchmarks = load(path)
    out: List[str] = []
    for heading, prefix, metric, unit, expectation in PANEL_SPECS:
        rows, x_order = group(benchmarks, prefix)
        if not rows:
            continue
        out.append(f"### {heading}\n")
        out.append(f"*{expectation}*\n")
        out.extend(panel_table(rows, x_order, metric, unit))
        counts_row = []
        for x in x_order:
            entry = rows[x].get("pd")
            if entry:
                info = entry.get("extra_info", {})
                counts_row.append(str(
                    info.get("communities",
                             info.get("produced",
                                      info.get("answers", "?")))))
        if counts_row:
            out.append(f"\n|O| per x (pd): {', '.join(counts_row)}  "
                       f"(`+` capped, `!` budget-censored)\n")
        out.append("")
    out.append("### Memory panels (tracemalloc peak, KB)\n")
    for heading, prefix in MEMORY_SPECS:
        rows, x_order = group(benchmarks, prefix)
        if not rows:
            continue
        out.append(f"#### {heading}\n")
        out.extend(panel_table(rows, x_order, "peak_kb", "KB"))
        out.append("")
    print("\n".join(out))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_results.json")
