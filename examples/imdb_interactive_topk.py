"""IMDB scenario: ranked top-k with interactive enlargement (Exp-3).

Builds a dense synthetic MovieLens-style database, then plays the
paper's Exp-3 session: ask for the top-k communities, look at them,
and ask for 50 more. PDk continues its stream for free; the pruned
BUk baseline has to recompute the whole query — we time both.

    python examples/imdb_interactive_topk.py
"""

import time

from repro import CommunitySearch
from repro.datasets import IMDBConfig, query_keywords
from repro.datasets.imdb import imdb_graph


def main() -> None:
    config = IMDBConfig(n_users=300, n_movies=200, n_ratings=8_000)
    print(f"Generating synthetic IMDB "
          f"(~{config.total_tuples_estimate} tuples, "
          f"{config.ratings_per_user:.0f} ratings/user, "
          f"{config.ratings_per_movie:.0f} ratings/movie)...")
    _, dbg = imdb_graph(config)
    print(f"  graph {dbg.n} nodes, {dbg.m} directed edges "
          f"(much denser than DBLP — hence Rmax=11 by default)")

    search = CommunitySearch(dbg)
    search.build_index(radius=13.0)

    keywords = query_keywords(kwf=0.0009, l=3)
    print(f"\nQuery: {keywords}  (Rmax=11)")

    # --- the PDk session ------------------------------------------------
    k = 20
    stream = search.top_k_stream(keywords, rmax=11.0)
    start = time.perf_counter()
    first = stream.take(k)
    first_time = time.perf_counter() - start
    print(f"\nPDk: top-{k} in {first_time:.2f}s")
    for rank, community in enumerate(first[:5], start=1):
        movies = sorted(dbg.label_of(u) for u in community.knodes)
        print(f"  rank {rank}: cost={community.cost:.2f} "
              f"centers={len(community.centers)} knodes={movies}")

    start = time.perf_counter()
    more = stream.more(50)
    more_time = time.perf_counter() - start
    print(f"PDk: user resets k to {k + 50}; the next {len(more)} "
          f"answers stream out in {more_time:.2f}s (no recomputation)")

    # --- the BUk baseline has to start over -----------------------------
    start = time.perf_counter()
    search.top_k(keywords, k, rmax=11.0, algorithm="bu")
    bu_first = time.perf_counter() - start
    start = time.perf_counter()
    search.top_k(keywords, k + 50, rmax=11.0, algorithm="bu")
    bu_rerun = time.perf_counter() - start
    print(f"\nBUk: top-{k} took {bu_first:.2f}s, but enlarging k "
          f"means a full re-run: +{bu_rerun:.2f}s")

    pd_total = first_time + more_time
    bu_total = bu_first + bu_rerun
    print(f"\nInteractive session total: PDk {pd_total:.2f}s vs "
          f"BUk {bu_total:.2f}s "
          f"({bu_total / max(pd_total, 1e-9):.1f}x)")

    multi = sum(1 for c in first + more if c.is_multi_center())
    print(f"{multi}/{len(first) + len(more)} answers are "
          f"multi-center — dense IMDB produces exactly the "
          f"multi-center communities trees cannot express.")


if __name__ == "__main__":
    main()
