"""Bring your own schema: community search over a custom database.

Shows the full substrate end to end — declare relations with primary
and foreign keys, load rows (referential integrity enforced),
materialize the database graph, and query communities — on a small
bug-tracker database where the question is "how are the people and
tickets mentioning these two components connected?".

    python examples/custom_database.py
"""

from repro import (
    Column,
    CommunitySearch,
    Database,
    ForeignKey,
    TableSchema,
    build_database_graph,
)


def build_tracker() -> Database:
    db = Database("tracker")
    db.create_table(TableSchema(
        "Person",
        [Column("pid", int), Column("name", str)],
        "pid",
        text_columns=["name"],
    ))
    db.create_table(TableSchema(
        "Ticket",
        [Column("tid", int), Column("title", str),
         Column("owner", int)],
        "tid",
        [ForeignKey("owner", "Person")],
        text_columns=["title"],
    ))
    db.create_table(TableSchema(
        "Comment",
        [Column("cid", int), Column("tid", int), Column("author", int),
         Column("body", str)],
        "cid",
        [ForeignKey("tid", "Ticket"), ForeignKey("author", "Person")],
        text_columns=["body"],
    ))

    people = ["ana", "bora", "chen", "dai", "edda"]
    for pid, name in enumerate(people):
        db.insert("Person", {"pid": pid, "name": name})

    tickets = [
        (0, "parser crash on empty input", 0),
        (1, "scheduler starves io queue", 1),
        (2, "parser accepts invalid utf8", 2),
        (3, "scheduler deadlock with parser lock", 1),
        (4, "docs for scheduler api", 3),
    ]
    for tid, title, owner in tickets:
        db.insert("Ticket", {"tid": tid, "title": title,
                             "owner": owner})

    comments = [
        (0, 0, 2, "reproduced the parser crash, stack attached"),
        (1, 0, 1, "related to the scheduler change last week"),
        (2, 3, 0, "parser lock ordering looks wrong"),
        (3, 3, 4, "scheduler side confirmed"),
        (4, 2, 4, "parser fuzzing finds more cases"),
        (5, 1, 3, "io queue metrics added"),
    ]
    for cid, tid, author, body in comments:
        db.insert("Comment", {"cid": cid, "tid": tid,
                              "author": author, "body": body})
    return db


def main() -> None:
    db = build_tracker()
    print("Loaded:", db)

    dbg = build_database_graph(db, label_columns={"Person": "name",
                                                  "Ticket": "title"})
    print(f"Database graph: {dbg.n} tuple nodes, {dbg.m} directed "
          f"edges (bi-directed FK references, BANKS weights)\n")

    search = CommunitySearch(dbg)
    search.build_index(radius=10.0)

    query = ["parser", "scheduler"]
    print(f"Query: {query}  — who/what connects both components?\n")
    for rank, community in enumerate(
            search.top_k(query, k=3, rmax=5.0), start=1):
        print(f"#{rank}")
        print(community.describe(dbg))
        print()

    # Integrity is enforced, like a real RDBMS:
    try:
        db.insert("Comment", {"cid": 99, "tid": 42, "author": 0,
                              "body": "dangling"})
    except Exception as error:
        print(f"Referential integrity works: {error}")


if __name__ == "__main__":
    main()
