"""DBLP scenario: from relational tables to keyword communities.

Builds a synthetic DBLP database (Author / Paper / Write / Cite, with
the paper's degree statistics), materializes the database graph with
BANKS edge weights, indexes it, and answers a multi-keyword query —
"which author/paper neighborhoods connect these topic words?" — the
workload of the paper's Exp-2.

    python examples/dblp_coauthor_communities.py
"""

import time

from repro import CommunitySearch
from repro.datasets import DBLPConfig, query_keywords
from repro.datasets.dblp import dblp_graph


def main() -> None:
    config = DBLPConfig(n_authors=1_500)
    print(f"Generating synthetic DBLP "
          f"(~{config.total_tuples_estimate} tuples)...")
    db, dbg = dblp_graph(config)
    for name, count in db.stats().items():
        if not name.startswith("__"):
            print(f"  {name:<8} {count:>8} rows")
    print(f"  graph    {dbg.n:>8} nodes, {dbg.m} directed edges "
          f"(bi-directed foreign-key references)")

    search = CommunitySearch(dbg)
    start = time.perf_counter()
    search.build_index(radius=8.0)
    print(f"\nInverted indexes built in "
          f"{time.perf_counter() - start:.2f}s "
          f"({search.index.size_bytes() / 1e6:.1f} MB)")

    keywords = query_keywords(kwf=0.0009, l=3)
    print(f"\nQuery: {keywords}  (Rmax=6, the paper's DBLP default)")

    projection = search.project(keywords, rmax=6.0)
    print(f"Projected graph: {projection.n} nodes "
          f"({projection.fraction_of(dbg):.2%} of G_D) — "
          f"Algorithm 6 keeps queries local.")

    start = time.perf_counter()
    communities = search.all_communities(keywords, rmax=6.0)
    elapsed = time.perf_counter() - start
    print(f"\nCOMM-all found {len(communities)} communities in "
          f"{elapsed:.2f}s")

    for rank, community in enumerate(communities[:3], start=1):
        print(f"\n#{rank} cost={community.cost:.2f} "
              f"({'multi' if community.is_multi_center() else 'single'}"
              f"-center)")
        for node in community.core:
            table, pk = dbg.provenance_of(node)
            print(f"  knode  {dbg.label_of(node)!r}  "
                  f"[{table} pk={pk}]")
        for node in community.centers[:3]:
            table, pk = dbg.provenance_of(node)
            print(f"  center {dbg.label_of(node)!r}  "
                  f"[{table} pk={pk}]")

    single = sum(1 for c in communities if not c.is_multi_center())
    print(f"\n{single}/{len(communities)} communities are "
          f"single-center — the sparse-DBLP behaviour the paper "
          f"reports in Exp-2.")


if __name__ == "__main__":
    main()
