"""Advanced features tour: everything beyond the paper's baseline.

Covers, on one small citation database:

1. the relational query layer (joins, predicates, secondary indexes);
2. tree answers vs communities (the paper's §I motivation);
3. alternative cost aggregates (``max`` vs the paper's ``sum``);
4. node weights (paper footnote 1);
5. persistence (save/load graph + index);
6. incremental growth (append tuples, update the index in place);
7. Graphviz export of an answer.

    python examples/advanced_features.py
"""

import tempfile
from pathlib import Path

from repro import CommunitySearch
from repro.analysis import community_to_dot, profile_results
from repro.core import enumerate_trees
from repro.datasets import figure1_graph, figure4_graph
from repro.datasets.dblp import DBLPConfig, dblp_graph
from repro.graph.io import load_database_graph, save_database_graph
from repro.graph.node_weights import node_weighted_view
from repro.rdb import col, query
from repro.text.maintenance import GraphDelta, apply_delta
from repro.text.persistence import load_index, save_index


def relational_queries() -> None:
    print("== 1. Relational query layer " + "=" * 33)
    db, _ = dblp_graph(DBLPConfig.tiny())
    db.table("Write").create_index("Aid")

    prolific = (query(db, "Write")
                .join("Author", on=("Aid", "Aid"))
                .select("Name", "Pid")
                .run())
    by_author = {}
    for row in prolific:
        by_author[row["Name"]] = by_author.get(row["Name"], 0) + 1
    top = max(by_author.items(), key=lambda kv: kv[1])
    print(f"most prolific author: {top[0]!r} with {top[1]} papers")

    recent = (query(db, "Paper")
              .where(col("Title").contains("kw"))
              .limit(3)
              .run())
    print(f"{len(recent)} planted-keyword papers sampled via "
          f"predicate scan")


def trees_vs_communities() -> None:
    print("\n== 2. Trees vs communities (paper §I) " + "=" * 24)
    dbg = figure1_graph()
    trees = enumerate_trees(dbg, ["kate", "smith"], max_weight=8.0)
    print(f"tree answers: {len(trees)} (the paper's Fig. 2 shows 5)")
    search = CommunitySearch(dbg)
    best = search.top_k(["kate", "smith"], 1, rmax=6.0)[0]
    inside = sum(
        1 for t in trees if set(t.nodes) <= set(best.nodes))
    print(f"the single best community contains {inside} of them whole")


def cost_aggregates_and_node_weights() -> None:
    print("\n== 3/4. Aggregates and node weights " + "=" * 26)
    dbg = figure4_graph()
    search = CommunitySearch(dbg)
    by_sum = search.top_k(["a", "b", "c"], 1, rmax=8.0)[0]
    by_max = search.top_k(["a", "b", "c"], 1, rmax=8.0,
                          aggregate="max")[0]
    print(f"best by sum-cost: {by_sum.cost:g}; "
          f"best by max-cost (eccentricity): {by_max.cost:g}")

    # penalize hub nodes: weight each node by half its in-degree
    weights = [dbg.graph.in_degree(u) / 2 for u in range(dbg.n)]
    weighted = CommunitySearch(node_weighted_view(dbg, weights))
    penalized = weighted.top_k(["a", "b", "c"], 1, rmax=16.0)[0]
    print(f"with node weights the same query's best cost becomes "
          f"{penalized.cost:g}")


def persistence_and_growth() -> None:
    print("\n== 5/6. Persistence and incremental growth " + "=" * 19)
    dbg = figure4_graph()
    search = CommunitySearch(dbg)
    index = search.build_index(radius=8.0)

    with tempfile.TemporaryDirectory() as tmp:
        graph_path = Path(tmp) / "g.json.gz"
        index_path = Path(tmp) / "i.json.gz"
        save_database_graph(dbg, graph_path)
        save_index(index, index_path)
        dbg2 = load_database_graph(graph_path)
        index2 = load_index(index_path, dbg2)
        print(f"round-tripped graph ({graph_path.stat().st_size} B) "
              f"and index ({index_path.stat().st_size} B)")

    # a new paper node containing all three keywords joins near v8
    delta = GraphDelta(
        new_nodes=[({"a", "b", "c"}, "v14", None)],
        new_edges=[(7, 13, 1.0), (13, 7, 1.0)])
    new_dbg, new_index = apply_delta(index2, delta)
    grown = CommunitySearch(new_dbg, index=new_index)
    best = grown.top_k(["a", "b", "c"], 1, rmax=8.0)[0]
    print(f"after growth the best community costs {best.cost:g} "
          f"(core includes the new node: {13 in best.core})")


def export_dot() -> None:
    print("\n== 7. Graphviz export " + "=" * 40)
    dbg = figure4_graph()
    search = CommunitySearch(dbg)
    results = search.top_k(["a", "b", "c"], 5, rmax=8.0)
    print(profile_results(results).render())
    dot = community_to_dot(results[0], dbg, name="R3")
    print("first two DOT lines:",
          " / ".join(dot.splitlines()[:2]))


if __name__ == "__main__":
    relational_queries()
    trees_vs_communities()
    cost_aggregates_and_node_weights()
    persistence_and_growth()
    export_dot()
