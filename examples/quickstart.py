"""Quickstart: community search on the paper's own examples.

Runs the 2-keyword query of Fig. 1 (who connects "Kate" and "Smith"?)
and the 3-keyword query of Fig. 4 / Table I, printing communities the
way the paper's figures draw them.

    python examples/quickstart.py
"""

from repro import CommunitySearch
from repro.datasets import (
    FIG4_QUERY,
    FIG4_RMAX,
    figure1_graph,
    figure4_graph,
)


def fig1_demo() -> None:
    print("=" * 64)
    print("Fig. 1 — co-authorship graph, query {kate, smith}, Rmax=6")
    print("=" * 64)
    dbg = figure1_graph()
    search = CommunitySearch(dbg)
    search.build_index(radius=6.0)

    for rank, community in enumerate(
            search.top_k(["kate", "smith"], k=5, rmax=6.0), start=1):
        print(f"\n#{rank}")
        print(community.describe(dbg))
        if community.is_multi_center():
            print("  (multi-center: a tree answer could not show "
                  "this whole relationship)")


def fig4_demo() -> None:
    print()
    print("=" * 64)
    print("Fig. 4 — toy database graph, query {a, b, c}, Rmax=8")
    print("(this regenerates the paper's Table I)")
    print("=" * 64)
    dbg = figure4_graph()
    search = CommunitySearch(dbg)
    search.build_index(radius=FIG4_RMAX)

    # COMM-k: ranked enumeration with interactive continuation.
    stream = search.top_k_stream(list(FIG4_QUERY), rmax=FIG4_RMAX)
    print("\nTop-3 communities (PDk):")
    for rank, community in enumerate(stream.take(3), start=1):
        knodes = ", ".join(sorted(
            dbg.label_of(u) for u in community.knodes))
        centers = ", ".join(dbg.label_of(u) for u in community.centers)
        print(f"  rank {rank}: cost={community.cost:g}  "
              f"knodes=[{knodes}]  centers=[{centers}]")

    print("\nUser enlarges k — the stream just continues (no rerun):")
    for rank, community in enumerate(stream.more(10), start=4):
        knodes = ", ".join(sorted(
            dbg.label_of(u) for u in community.knodes))
        print(f"  rank {rank}: cost={community.cost:g}  "
              f"knodes=[{knodes}]")

    # COMM-all: every community, polynomial delay.
    total = sum(1 for _ in search.iter_all(list(FIG4_QUERY),
                                           rmax=FIG4_RMAX))
    print(f"\nCOMM-all (PDall) enumerated {total} communities, "
          f"complete and duplication-free.")


if __name__ == "__main__":
    fig1_demo()
    fig4_demo()
